"""Summary signatures at the directory (Section 5).

When the OS deschedules a thread mid-transaction it unions the thread's
``Rsig``/``Wsig`` into process-wide summary signatures (``RSsig`` and
``WSsig``) installed at the L2 directory, and records the processor the
transaction last ran on in the *Cores Summary* bitmap.  The L2 consults
the summaries on every L1 miss; a hit traps to a software handler that
checks the per-thread saved signatures (through the Conflict Management
Table) and updates the suspended transactions' CSTs.

Unlike LogTM-SE, the summaries sit at the directory — off the L1 hit
path — because FlexTM flushes all speculative state from the cache when
descheduling, so the first conflicting access after a switch is
guaranteed to miss.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.signatures.bloom import Signature


class SummarySignatures:
    """RSsig/WSsig plus the Cores Summary register at the directory."""

    def __init__(self, signature_bits: int = 2048, num_hashes: int = 4, num_processors: int = 16):
        self._bits = signature_bits
        self._hashes = num_hashes
        self._num_processors = num_processors
        self.read_summary = Signature(signature_bits, num_hashes)
        self.write_summary = Signature(signature_bits, num_hashes)
        self._cores_summary = 0
        # The OS recomputes summaries from scratch on reschedule, so we
        # keep the contributing per-thread signatures keyed by thread id.
        self._contributions: Dict[int, tuple] = {}

    # -- OS-side maintenance ---------------------------------------------------

    def install(self, thread_id: int, rsig: Signature, wsig: Signature, last_processor: int) -> None:
        """Union a descheduled transaction's signatures into the summaries."""
        if not 0 <= last_processor < self._num_processors:
            raise ValueError(f"processor {last_processor} out of range")
        self._contributions[thread_id] = (rsig.copy(), wsig.copy(), last_processor)
        self._rebuild()

    def remove(self, thread_id: int) -> None:
        """Drop a thread's contribution (it was rescheduled or finished).

        Summaries are recomputed from the remaining suspended threads,
        mirroring the OS routine the paper describes for reschedule.
        """
        self._contributions.pop(thread_id, None)
        self._rebuild()

    def _rebuild(self) -> None:
        self.read_summary = Signature(self._bits, self._hashes)
        self.write_summary = Signature(self._bits, self._hashes)
        self._cores_summary = 0
        for rsig, wsig, processor in self._contributions.values():
            self.read_summary.union(rsig)
            self.write_summary.union(wsig)
            self._cores_summary |= 1 << processor

    # -- directory-side queries ------------------------------------------------

    def hits_read_summary(self, line_address: int) -> bool:
        """Would this access conflict with a suspended reader?"""
        return self.read_summary.member(line_address)

    def hits_write_summary(self, line_address: int) -> bool:
        """Would this access conflict with a suspended writer?"""
        return self.write_summary.member(line_address)

    def conflicts(self, line_address: int, is_write: bool) -> bool:
        """Summary check performed by the L2 on an L1 miss.

        A write conflicts with suspended readers or writers; a read only
        with suspended writers.
        """
        if self.hits_write_summary(line_address):
            return True
        return is_write and self.hits_read_summary(line_address)

    def suspended_threads(self) -> List[int]:
        """Thread ids currently folded into the summaries."""
        return sorted(self._contributions)

    def core_in_summary(self, processor: int) -> bool:
        """Cores Summary test: does a descheduled transaction last-ran here?

        The directory refrains from pruning such a processor from a
        sharer list when the line hits RSsig/WSsig, so the L1 keeps
        receiving the coherence traffic the thread will need when it is
        swapped back in.
        """
        return bool((self._cores_summary >> processor) & 1)

    def sticky_sharer(self, line_address: int, processor: int) -> bool:
        """Combined rule used by the directory on sharer-list pruning."""
        if not self.core_in_summary(processor):
            return False
        return self.hits_read_summary(line_address) or self.hits_write_summary(line_address)

    @property
    def is_empty(self) -> bool:
        return not self._contributions

    def threads_conflicting(self, line_address: int, is_write: bool) -> Iterable[int]:
        """Per-thread refinement done by the software handler.

        The hardware summary is conservative; the handler walks the CMT
        and re-tests each suspended thread's saved signatures.
        """
        for thread_id, (rsig, wsig, _) in sorted(self._contributions.items()):
            if wsig.member(line_address) or (is_write and rsig.member(line_address)):
                yield thread_id
