"""The banked Bloom-filter signature register (Rsig / Wsig / Osig).

Matches the paper's hardware: 2048 bits, 4 banks, one hash per bank,
flash-clearable, and fully software-visible (it can be saved, restored
and unioned by the OS for context-switch virtualization, Section 5).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.signatures.hashing import HashFamily, make_hash_family


class Signature:
    """A conservative set-of-addresses summary.

    Address granularity is the caller's business — FlexTM inserts
    *line* addresses (physical address >> offset bits).
    """

    def __init__(
        self,
        bits: int = 2048,
        num_hashes: int = 4,
        family: Optional[HashFamily] = None,
        seed: int = 0xF1E7,
    ):
        if bits < num_hashes:
            raise ValueError("signature must have at least one bit per bank")
        self.bits = bits
        self.num_hashes = num_hashes
        self._family = family or make_hash_family(bits, num_hashes, seed=seed)
        self._bank_bits = bits // num_hashes
        # One int bitmap per bank; Python ints give flash-clear for free.
        self._banks = [0] * num_hashes
        self._inserted = 0

    # -- Table 4(a) interface -------------------------------------------------

    def insert(self, address: int) -> None:
        """``insert [%r], Sig`` — add an address to the signature."""
        for bank, index in enumerate(self._family.indices(address)):
            self._banks[bank] |= 1 << index
        self._inserted += 1

    def member(self, address: int) -> bool:
        """``member [%r], Sig`` — conservative membership test.

        True for every inserted address; may be true for others
        (false positives), never false for an inserted one.
        """
        for bank, index in enumerate(self._family.indices(address)):
            if not (self._banks[bank] >> index) & 1:
                return False
        return True

    def read_hash(self, address: int) -> int:
        """``read-hash [%r]`` — concatenated per-bank indices."""
        value = 0
        for index in self._family.indices(address):
            value = (value << self._family.index_bits) | index
        return value

    def clear(self) -> None:
        """``clear Sig`` — flash-zero the register."""
        self._banks = [0] * self.num_hashes
        self._inserted = 0

    # -- software/OS-level operations -----------------------------------------

    def union(self, other: "Signature") -> None:
        """OR another signature into this one (summary-signature build)."""
        if other.bits != self.bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot union signatures of different shapes")
        for bank in range(self.num_hashes):
            self._banks[bank] |= other._banks[bank]
        self._inserted += other._inserted

    def intersects(self, other: "Signature") -> bool:
        """True when the two filters share a set bit in every bank.

        Conservative set-intersection test used when comparing a saved
        transaction signature against a request signature.
        """
        if other.bits != self.bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot intersect signatures of different shapes")
        return all(self._banks[b] & other._banks[b] for b in range(self.num_hashes))

    def insert_all(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.insert(address)

    def copy(self) -> "Signature":
        """Snapshot (shares the immutable hash family)."""
        clone = Signature(self.bits, self.num_hashes, family=self._family)
        clone._banks = list(self._banks)
        clone._inserted = self._inserted
        return clone

    @property
    def is_empty(self) -> bool:
        return all(bank == 0 for bank in self._banks)

    @property
    def popcount(self) -> int:
        """Number of set bits across all banks."""
        return sum(bin(bank).count("1") for bank in self._banks)

    @property
    def inserted_count(self) -> int:
        """How many inserts have been performed (not distinct addresses)."""
        return self._inserted

    def occupancy(self) -> float:
        """Fraction of bits set — a proxy for false-positive pressure."""
        return self.popcount / self.bits

    def __repr__(self) -> str:
        return (
            f"Signature(bits={self.bits}, banks={self.num_hashes}, "
            f"popcount={self.popcount})"
        )
