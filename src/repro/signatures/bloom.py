"""The banked Bloom-filter signature register (Rsig / Wsig / Osig).

Matches the paper's hardware: 2048 bits, 4 banks, one hash per bank,
flash-clearable, and fully software-visible (it can be saved, restored
and unioned by the OS for context-switch virtualization, Section 5).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.signatures.hashing import HashFamily, make_hash_family


class Signature:
    """A conservative set-of-addresses summary.

    Address granularity is the caller's business — FlexTM inserts
    *line* addresses (physical address >> offset bits).
    """

    def __init__(
        self,
        bits: int = 2048,
        num_hashes: int = 4,
        family: Optional[HashFamily] = None,
        seed: int = 0xF1E7,
    ):
        if bits < num_hashes:
            raise ValueError("signature must have at least one bit per bank")
        self.bits = bits
        self.num_hashes = num_hashes
        self._family = family or make_hash_family(bits, num_hashes, seed=seed)
        self._bank_bits = bits // num_hashes
        # One int bitmap per bank; Python ints give flash-clear for free.
        self._banks = [0] * num_hashes
        self._inserted = 0
        #: True once bits inserted under a *different* hash family were
        #: unioned in.  Such bits cannot be probed exactly with this
        #: signature's hashes, so membership/intersection degrade to the
        #: fully conservative answer (see the resilience layer's hash
        #: rotation, docs/RESILIENCE.md).
        self._foreign = False

    # -- Table 4(a) interface -------------------------------------------------

    def insert(self, address: int) -> None:
        """``insert [%r], Sig`` — add an address to the signature."""
        for bank, index in enumerate(self._family.indices(address)):
            self._banks[bank] |= 1 << index
        self._inserted += 1

    def member(self, address: int) -> bool:
        """``member [%r], Sig`` — conservative membership test.

        True for every inserted address; may be true for others
        (false positives), never false for an inserted one.  A signature
        holding foreign-family bits answers True for everything while
        non-empty: its hashes cannot probe those bits exactly, and a
        false negative would be unsafe.
        """
        if self._foreign:
            return not self.is_empty
        for bank, index in enumerate(self._family.indices(address)):
            if not (self._banks[bank] >> index) & 1:
                return False
        return True

    def read_hash(self, address: int) -> int:
        """``read-hash [%r]`` — concatenated per-bank indices."""
        value = 0
        for index in self._family.indices(address):
            value = (value << self._family.index_bits) | index
        return value

    def clear(self) -> None:
        """``clear Sig`` — flash-zero the register."""
        self._banks = [0] * self.num_hashes
        self._inserted = 0
        self._foreign = False

    # -- software/OS-level operations -----------------------------------------

    def union(self, other: "Signature") -> None:
        """OR another signature into this one (summary-signature build).

        Unioning a signature built from a different hash family marks
        the result foreign: the merged bits are only meaningful to the
        family that produced them, so every later probe must answer
        conservatively.
        """
        if other.bits != self.bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot union signatures of different shapes")
        for bank in range(self.num_hashes):
            self._banks[bank] |= other._banks[bank]
        self._inserted += other._inserted
        if other._foreign or (other._family is not self._family and not other.is_empty):
            self._foreign = True

    def intersects(self, other: "Signature") -> bool:
        """True when the two filters share a set bit in every bank.

        Conservative set-intersection test used when comparing a saved
        transaction signature against a request signature.  Signatures
        built from different hash families cannot be compared bank-wise;
        two non-empty filters then conservatively intersect.
        """
        if other.bits != self.bits or other.num_hashes != self.num_hashes:
            raise ValueError("cannot intersect signatures of different shapes")
        if self._foreign or other._foreign or self._family is not other._family:
            return not (self.is_empty or other.is_empty)
        return all(self._banks[b] & other._banks[b] for b in range(self.num_hashes))

    def insert_all(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.insert(address)

    def copy(self) -> "Signature":
        """Snapshot (shares the immutable hash family)."""
        clone = Signature(self.bits, self.num_hashes, family=self._family)
        clone._banks = list(self._banks)
        clone._inserted = self._inserted
        clone._foreign = self._foreign
        return clone

    @property
    def family(self) -> HashFamily:
        """The hash family currently wired to this register."""
        return self._family

    def rebind_family(self, family: HashFamily) -> None:
        """Swap the hash family; only legal while the register is clear.

        Models the resilience layer's hash-rotation escape hatch: the
        hardware can only re-wire the hash network between transactions,
        when no bits depend on the old family.
        """
        if not self.is_empty:
            raise ValueError("cannot rebind the hash family of a non-empty signature")
        self._family = family
        self._foreign = False

    @property
    def is_empty(self) -> bool:
        return all(bank == 0 for bank in self._banks)

    @property
    def popcount(self) -> int:
        """Number of set bits across all banks."""
        return sum(bin(bank).count("1") for bank in self._banks)

    @property
    def inserted_count(self) -> int:
        """How many inserts have been performed (not distinct addresses)."""
        return self._inserted

    def occupancy(self) -> float:
        """Fraction of bits set — a proxy for false-positive pressure."""
        return self.popcount / self.bits

    def bank_fills(self) -> list:
        """Per-bank fill fraction (set bits / bank width)."""
        return [bin(bank).count("1") / self._bank_bits for bank in self._banks]

    def false_positive_estimate(self) -> float:
        """Probability a never-inserted address tests positive.

        A probe hits one independent index per bank, so the estimate is
        the product of the per-bank fill fractions.  Exact for an
        idealised banked filter; a good sensor for the real one.
        """
        estimate = 1.0
        for fill in self.bank_fills():
            estimate *= fill
        return estimate

    def __repr__(self) -> str:
        return (
            f"Signature(bits={self.bits}, banks={self.num_hashes}, "
            f"popcount={self.popcount})"
        )
