"""Bloom-filter signatures (Section 3.1).

Signatures conservatively summarize a transaction's read/write sets:
membership tests may return false positives but never false negatives.
FlexTM keeps them *first-class* — software can read, union, clear and
test them (Table 4a exposes ``insert``/``member``/``read-hash``/
``activate``/``clear``).
"""

from repro.signatures.hashing import BitSelectHash, H3Hash, HashFamily, make_hash_family
from repro.signatures.bloom import Signature
from repro.signatures.summary import SummarySignatures

__all__ = [
    "BitSelectHash",
    "H3Hash",
    "HashFamily",
    "make_hash_family",
    "Signature",
    "SummarySignatures",
]
