"""TL-2 (Dice, Shalev, Shavit) — blocking word-based STM.

The paper's WS2 baseline.  Mechanics reproduced here:

* a global version clock;
* per-access orec lookup: reads sample the orec, read the data, then
  re-check the orec against the transaction's read version (abort on a
  newer or locked orec);
* redo-log writes;
* commit: lock the write set's orecs with bounded spinning, increment
  the global clock, validate the read set, write back, release with the
  new version.

The per-access bookkeeping (orec hashing, logging, and the bookkeeping
"required prior to the first read — checking write sets") is charged as
explicit work cycles in addition to the real metadata memory traffic;
together these reproduce TL-2's reported overhead profile (Section 7.3:
FlexTM is ~4x TL-2 at one thread on Vacation).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.machine import FlexTMMachine
from repro.errors import TransactionAborted
from repro.runtime.api import TMBackend
from repro.sim.rng import DeterministicRng
from repro.stm.base import (
    LockTable,
    StmThreadState,
    encode_locked,
    encode_version,
    is_locked,
    version_of,
)

#: Software cost of hashing into the orec table + log append.
WRITE_BOOKKEEPING_CYCLES = 8
#: Software cost of the write-set Bloom check preceding every read.
READ_BOOKKEEPING_CYCLES = 6
#: Bounded spin attempts while a commit-time lock is held.
LOCK_SPIN_ATTEMPTS = 4


class Tl2Runtime(TMBackend):
    """TL-2 over the simulated machine."""

    name = "TL2"

    def __init__(self, machine: FlexTMMachine, num_orecs: int = 16384, rng: DeterministicRng = None):
        self.machine = machine
        self.rng = rng or DeterministicRng(0x712)
        self.orecs = LockTable(machine, num_orecs)
        self.clock_address = machine.allocate(machine.params.line_bytes, line_aligned=True)
        machine.memory.write(self.clock_address, encode_version(1))

    def _state(self, thread) -> StmThreadState:
        if not hasattr(thread, "stm_state") or thread.stm_state is None:
            thread.stm_state = StmThreadState()
        return thread.stm_state

    def begin(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        state.reset()
        state.attempts += 1
        clock = yield ("load", self.clock_address)
        state.read_version = version_of(clock.value)

    def read(self, thread, address: int) -> Iterator[Tuple]:
        state = self._state(thread)
        yield ("work", READ_BOOKKEEPING_CYCLES)
        if address in state.write_map:
            return state.write_map[address]
        orec_address = self.orecs.orec_address(address)
        pre = yield ("load", orec_address)
        data = yield ("load", address)
        post = yield ("load", orec_address)
        if (
            is_locked(post.value)
            or post.value != pre.value
            or version_of(post.value) > state.read_version
        ):
            raise TransactionAborted("TL2 read validation failed")
        state.read_set.append((orec_address, post.value))
        return data.value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        state = self._state(thread)
        yield ("work", WRITE_BOOKKEEPING_CYCLES)
        state.write_map[address] = value
        state.note_write_orec(self.orecs.orec_address(address))

    def commit(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        if not state.write_map:
            return  # read-only fast path: reads already validated
        held = []
        try:
            yield from self._lock_write_set(thread, state, held)
            write_version = yield from self._advance_clock(thread)
            yield from self._validate_reads(state, held)
        except TransactionAborted:
            yield from self._release(held, encode=None)
            raise
        for address, value in state.write_map.items():
            yield ("store", address, value)
        yield from self._release(held, encode=encode_version(write_version))

    def _lock_write_set(self, thread, state: StmThreadState, held) -> Iterator[Tuple]:
        for orec_address in state.write_orecs:
            spins = 0
            while True:
                current = yield ("load", orec_address)
                word = current.value
                if not is_locked(word):
                    result = yield ("cas", orec_address, word, encode_locked(thread.thread_id))
                    if result.success:
                        held.append((orec_address, word))
                        break
                spins += 1
                if spins > LOCK_SPIN_ATTEMPTS:
                    raise TransactionAborted("TL2 lock acquisition failed")
                yield ("work", self.rng.randint(1, 16 << spins))

    def _advance_clock(self, thread) -> Iterator[Tuple]:
        while True:
            current = yield ("load", self.clock_address)
            new_version = version_of(current.value) + 1
            result = yield ("cas", self.clock_address, current.value, encode_version(new_version))
            if result.success:
                return new_version

    def _validate_reads(self, state: StmThreadState, held) -> Iterator[Tuple]:
        pre_lock_words = {address: word for address, word in held}
        for orec_address, observed in state.read_set:
            if orec_address in pre_lock_words:
                # We hold the lock; the version cannot move under us,
                # but it must not have moved between our read and our
                # acquisition (read-then-write upgrade hazard).
                if pre_lock_words[orec_address] != observed:
                    raise TransactionAborted("TL2 upgrade validation failed")
                continue
            current = yield ("load", orec_address)
            if current.value != observed:
                raise TransactionAborted("TL2 commit validation failed")

    def _release(self, held, encode) -> Iterator[Tuple]:
        for orec_address, old_word in held:
            yield ("store", orec_address, old_word if encode is None else encode)

    def on_abort(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        state.reset()
        yield ("work", 10)

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        window = min(aborts_in_a_row, 8)
        return self.rng.randint(1, (1 << window) * 16)
