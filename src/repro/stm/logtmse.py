"""A LogTM-SE-style system: eager versioning, stall-based conflicts.

The paper contrasts FlexTM with LogTM-SE (Section 2, Section 5,
Section 6) on three axes, all modelled here:

* **No remote aborts** — LogTM-SE "does not allow transactions to abort
  one another": the conflict manager may only stall the requestor or
  abort *itself* (after bounded stalling, the possible-deadlock trap).
* **Eager versioning** — new values go to memory, old values to an
  undo log.  Commits are cheap (drop the log) but aborts must walk the
  log *in reverse* (the time-ordering constraint Section 4.1 contrasts
  with the OT's order-free copy-back), charged per logged write.  The
  log insertions themselves consume cycles and L1 bandwidth on every
  speculative write — overhead FlexTM's PDI avoids.
* **Convoying** — because a requestor can only stall, transactions
  queue behind a conflicting transaction that is descheduled
  (Section 5's argument for FlexTM's remote aborts).

Mechanically we ride on the same machine: signatures detect conflicts
exactly as in FlexTM, but the runtime's policy is stall-until-clean, so
no access ever completes against a conflicting line — which is what
makes eager versioning safe without making uncommitted values visible.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.runtime.flextm import FlexTMRuntime, NACK_RETRY_CYCLES
from repro.sim.rng import DeterministicRng

#: Cycles to append one entry to the in-memory undo log (old value
#: read + log write; on the critical path, unlike FlexTM's PDI).
LOG_INSERT_CYCLES = 14
#: Cycles to restore one logged line during an abort (reverse walk).
UNDO_PER_WRITE_CYCLES = 22
#: Stall attempts before declaring possible deadlock and self-aborting.
MAX_STALL_ATTEMPTS = 24


class LogTmSeRuntime(FlexTMRuntime):
    """LogTM-SE modelled on the FlexTM substrate."""

    name = "LogTM-SE"

    def __init__(self, machine: FlexTMMachine, rng: DeterministicRng = None):
        # Conflicts are handled by our own stall loops, so the base
        # class runs in LAZY mode (no manager dispatch) and we keep the
        # CSTs from triggering commit-time wounds by stalling until the
        # access is conflict-free.
        super().__init__(machine, mode=ConflictMode.LAZY, clean_r_w=False)
        self.rng = rng or DeterministicRng(0x105)

    # -------------------------------------------------------------- accesses

    def read(self, thread, address: int) -> Iterator[Tuple]:
        value = yield from self._stalling_access(thread, ("tload", address))
        return value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        yield from self._stalling_access(thread, ("tstore", address, value))
        # Undo-log insertion on the critical path.
        thread.logtm_undo_entries = getattr(thread, "logtm_undo_entries", 0) + 1
        yield ("work", LOG_INSERT_CYCLES)

    def _stalling_access(self, thread, op: Tuple) -> Iterator[Tuple]:
        """Retry the access until it completes without conflicts.

        A conflicting access leaves CST bits behind on both sides; we
        clear our own after every failed attempt (the stall resolved
        nothing yet) and re-issue.  After MAX_STALL_ATTEMPTS the
        possible-deadlock trap fires and we abort *ourselves* — the only
        abort LogTM-SE hardware can perform.
        """
        proc = self.machine.processors[thread.processor]
        attempt = 0
        while True:
            result = yield op
            if result.nacked:
                yield ("work", NACK_RETRY_CYCLES)
                continue
            if not result.conflicts:
                return result.value
            # Withdraw from the conflict: clear the bits this attempt
            # set on our side (the enemy's bits age out at its commit)
            # and drop the just-installed line — a NACKed LogTM request
            # never delivers data, so the retry must go back to the
            # directory rather than hit a stale local copy.
            for enemy_proc, _kind in result.conflicts:
                proc.csts.r_w.clear_bit(enemy_proc)
                proc.csts.w_r.clear_bit(enemy_proc)
                proc.csts.w_w.clear_bit(enemy_proc)
            line_address = self.machine.amap.line_of(op[1])
            proc.l1.array.remove(line_address)
            attempt += 1
            if attempt >= MAX_STALL_ATTEMPTS:
                yield from self._self_abort(thread)
            yield ("work", self.rng.randint(8, 16 << min(attempt, 7)))

    def _self_abort(self, thread) -> Iterator[Tuple]:
        descriptor = thread.descriptor
        # Stage attribution before flipping our own TSW: the scheduler's
        # abort poll sees the flip on the very next step — before the
        # raise below ever runs — and an unstaged flip is exactly the
        # attribution loss strict invariants diagnose.
        self.machine.stage_wound(
            descriptor.tsw_address, thread.thread_id, "stall-deadlock"
        )
        yield ("cas", descriptor.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
        raise TransactionAborted(
            "LogTM-SE possible-deadlock self-abort",
            by=thread.thread_id,
            conflict="stall-deadlock",
        )

    # ----------------------------------------------------------------- commit

    def commit(self, thread) -> Iterator[Tuple]:
        depth = getattr(thread, "nest_depth", 1)
        if depth > 1:
            thread.nest_depth = depth - 1
            yield ("work", 1)
            return
        # Stalling resolved every conflict before the access completed,
        # so commit is a bare CAS-Commit.  Any CST bits we carry were
        # set by enemies' *withdrawn* probe attempts (they never used
        # the data), so they are cleared rather than enforced — LogTM
        # has no commit-time arbitration at all.
        proc = self.machine.processors[thread.processor]
        descriptor = thread.descriptor
        self.machine.stats.histogram("cst.conflict_degree").record(
            len(proc.conflict_partners)
        )
        while True:
            proc.csts.clear()
            result = yield ("cas_commit",)
            if result.success:
                thread.nest_depth = 0
                descriptor.commits += 1
                thread.logtm_undo_entries = 0  # log discarded, free
                self._finish(thread)
                return
            if result.value != TxStatus.ACTIVE:
                thread.nest_depth = 0
                raise TransactionAborted("lost the commit race")

    # ------------------------------------------------------------------ abort

    def on_abort(self, thread) -> Iterator[Tuple]:
        # The undo log must be replayed in reverse, one line at a time —
        # abort cost scales with the write set (vs FlexTM's flash).
        entries = getattr(thread, "logtm_undo_entries", 0)
        if entries:
            yield ("work", entries * UNDO_PER_WRITE_CYCLES)
        thread.logtm_undo_entries = 0
        yield from super().on_abort(thread)
