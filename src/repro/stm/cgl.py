"""Coarse-grain locking (CGL) — the paper's normalization baseline.

Every "transaction" acquires a single global test-and-test-and-set
lock, runs its accesses as plain loads and stores, and releases.  The
single-thread CGL run is what Figures 4 and 5 normalize against; with
more threads CGL serializes completely (its curves are flat), but it
carries no per-access overhead at all, which is why the STMs fall below
it at one thread.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.machine import FlexTMMachine
from repro.runtime.api import TMBackend
from repro.sim.rng import DeterministicRng

#: Free / held values of the global lock word.
LOCK_FREE = 0
LOCK_HELD = 1


class CglRuntime(TMBackend):
    """Single global lock; no speculation, no aborts."""

    name = "CGL"

    def __init__(self, machine: FlexTMMachine, rng: DeterministicRng = None):
        self.machine = machine
        self.rng = rng or DeterministicRng(0xCA7)
        self.lock_address = machine.allocate(machine.params.line_bytes, line_aligned=True)
        machine.memory.write(self.lock_address, LOCK_FREE)

    def begin(self, thread) -> Iterator[Tuple]:
        backoff = 4
        while True:
            # Test-and-test-and-set: spin on a (cache-local) read first.
            observed = yield ("load", self.lock_address)
            if observed.value == LOCK_FREE:
                result = yield ("cas", self.lock_address, LOCK_FREE, LOCK_HELD)
                if result.success:
                    thread.in_transaction = True
                    return
            yield ("work", self.rng.randint(1, backoff))
            backoff = min(backoff * 2, 1024)

    def read(self, thread, address: int) -> Iterator[Tuple]:
        result = yield ("load", address)
        return result.value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        yield ("store", address, value)

    def commit(self, thread) -> Iterator[Tuple]:
        yield ("store", self.lock_address, LOCK_FREE)

    def on_abort(self, thread) -> Iterator[Tuple]:
        # CGL cannot abort; present only to satisfy the interface.
        return
        yield  # pragma: no cover
