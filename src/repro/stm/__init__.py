"""Baseline TM systems the paper compares against (Section 7.2).

* :mod:`repro.stm.cgl` — single coarse-grain lock (the normalization
  baseline of Figures 4 and 5);
* :mod:`repro.stm.tl2` — TL-2, a blocking word-based STM with a global
  version clock and commit-time locking;
* :mod:`repro.stm.rstm` — RSTM configured with invisible readers and
  self-validation (eager ownership, clone-on-write);
* :mod:`repro.stm.rtmf` — RTM-F, the hardware-accelerated STM that uses
  AOU + PDI to eliminate copying and validation but keeps per-access
  metadata bookkeeping;
* :mod:`repro.stm.htmbe` — HTM-BE, a best-effort HTM straw man with
  bounded read/write sets and a deterministic HTM->SW->irrevocable
  fallback ladder.

All run the same workloads through the same machine substrate; only
their bookkeeping differs, which is precisely the comparison the paper
draws.
"""

from repro.stm.base import LockTable, StmThreadState
from repro.stm.cgl import CglRuntime
from repro.stm.tl2 import Tl2Runtime
from repro.stm.rstm import RstmRuntime
from repro.stm.rtmf import RtmfRuntime
from repro.stm.logtmse import LogTmSeRuntime
from repro.stm.htmbe import HtmBestEffortRuntime

__all__ = [
    "LockTable",
    "StmThreadState",
    "CglRuntime",
    "Tl2Runtime",
    "RstmRuntime",
    "RtmfRuntime",
    "LogTmSeRuntime",
    "HtmBestEffortRuntime",
]
