"""RTM-F — hardware-accelerated STM (Shriraman et al., ISCA'07).

RTM-F gave software TM two hardware assists: **AOU** (alerts on remote
modification of metadata, eliminating read-set validation) and **PDI**
(speculative writes buffered in the cache, eliminating copying).  What
it could *not* eliminate is per-access metadata bookkeeping — software
must still segregate data from metadata and touch a header on every
open, which the paper measures at 40–60% of execution time and which
caps RTM-F at roughly half of FlexTM's throughput.

Our model therefore rides on the FlexTM machine mechanisms for
versioning and abort (an accurate stand-in for AOU+PDI) and adds
exactly the bookkeeping RTM-F retains: a shared per-object header
access plus fixed software cycles on every read and write, and a
header update per written object at commit time.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.runtime.contention import ConflictManager
from repro.runtime.flextm import FlexTMRuntime
from repro.stm.base import LockTable, encode_version, version_of

#: Fixed software bookkeeping per open (descriptor lookup, set insert,
#: metadata fixup) — the cost RTM-F could not remove.
META_READ_CYCLES = 6
META_WRITE_CYCLES = 8
#: Commit-time metadata update cost per written object, plus the real
#: header store issued below.
META_COMMIT_CYCLES = 6


class RtmfRuntime(FlexTMRuntime):
    """RTM-F = FlexTM's hardware assists + per-access software metadata."""

    name = "RTM-F"

    def __init__(
        self,
        machine: FlexTMMachine,
        mode: ConflictMode = ConflictMode.EAGER,
        manager: ConflictManager = None,
        num_orecs: int = 1024,
    ):
        super().__init__(machine, mode=mode, manager=manager)
        self.headers = LockTable(machine, num_orecs)

    def begin(self, thread) -> Iterator[Tuple]:
        thread.rtmf_written_headers = []
        yield from super().begin(thread)
        # RTM-F's BEGIN also initializes the software descriptor's
        # metadata lists (beyond FlexTM's checkpoint).
        yield ("work", 20)

    def read(self, thread, address: int) -> Iterator[Tuple]:
        header = self.headers.orec_address(address)
        yield ("load", header)
        yield ("work", META_READ_CYCLES)
        value = yield from super().read(thread, address)
        return value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        header = self.headers.orec_address(address)
        written = thread.rtmf_written_headers
        if header not in written:
            written.append(header)
            # First write to this object: publish ownership metadata.
            current = yield ("load", header)
            yield ("store", header, current.value)
        yield ("work", META_WRITE_CYCLES)
        yield from super().write(thread, address, value)

    def commit(self, thread) -> Iterator[Tuple]:
        # Commit-time metadata updates for each written object precede
        # the (hardware) commit itself.
        for header in getattr(thread, "rtmf_written_headers", []):
            current = yield ("load", header)
            yield ("store", header, encode_version(version_of(current.value) + 1))
            yield ("work", META_COMMIT_CYCLES)
        yield from super().commit(thread)
        thread.rtmf_written_headers = []
