"""HTM-BE — a best-effort hardware TM with a hybrid software fallback.

The straw man FlexTM's unbounded, decoupled TM is measured against:
commercially-shipped best-effort HTM (Intel TSX, POWER8 TM, the FORTH
limited-read/write-set design in PAPERS.md).  The hardware path is
cheap but guarantees nothing:

* **capacity** — the read and write sets live in bounded hardware
  structures (``params.htm_read_lines`` / ``params.htm_write_lines``
  cache lines); touching one line too many aborts the attempt with
  kind ``"capacity"``;
* **htm-conflict** — conflict detection is eager and merciless: any
  remote access that clashes with another in-flight attempt aborts the
  *requesting* attempt (the attacker self-aborts, which is how real
  best-effort HTM behaves when a coherence request hits a
  transactional line — the simpler resolution, and it keeps all
  in-flight attempts pairwise conflict-free, so serializability and
  opacity hold by construction);
* **explicit** — a context switch or migration destroys the hardware
  state, so suspending a hardware attempt cancels it.

Because the hardware can always say no, every transaction carries a
software escape hatch driven by
:class:`repro.resilience.fallback.FallbackPolicy`: bounded HTM retries
with deterministic exponential backoff, then an unbounded software
slow path (same conflict rule, per-access bookkeeping cost), then the
FIFO irrevocability token as the last resort.  Acquiring the token
drains in-flight peers with kind ``"fallback"`` and the holder runs
serially — the HTM/SW mutual-exclusion invariant (``htm-sw-mutex``)
checked by :class:`repro.chaos.invariants.InvariantChecker`.

Writes are redo-logged and applied at commit; during write-back the
committer stays registered (``committing``) so a concurrent attempt
touching its lines still self-aborts rather than observing a torn
write-back.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.machine import FlexTMMachine
from repro.errors import TransactionAborted
from repro.resilience.fallback import (
    HTM_PATH,
    IRREVOCABLE_PATH,
    SW_PATH,
    FallbackPolicy,
    FallbackSpec,
)
from repro.runtime.api import TMBackend

#: Hardware begin/commit are a handful of cycles; the software slow
#: path pays STM-style per-access and commit-time bookkeeping.
BEGIN_CYCLES = {HTM_PATH: 2, SW_PATH: 10, IRREVOCABLE_PATH: 10}
COMMIT_CYCLES = {HTM_PATH: 3, SW_PATH: 12, IRREVOCABLE_PATH: 12}
#: Software cost of write-set lookup preceding every slow-path read.
SW_READ_BOOKKEEPING_CYCLES = 6
#: Software cost of logging a slow-path write.
SW_WRITE_BOOKKEEPING_CYCLES = 8
#: Buffering a store into the hardware write set.
HTM_STORE_CYCLES = 1
#: Discarding speculative state after an abort.
ABORT_CYCLES = 8


class HtmThreadState:
    """One in-flight attempt: its path, sets, redo log, and doom flags."""

    __slots__ = (
        "path", "read_lines", "write_lines", "write_map",
        "doomed", "abort_kind", "abort_by", "committing",
    )

    def __init__(self, path: str):
        self.path = path
        self.read_lines: Set[int] = set()
        self.write_lines: Set[int] = set()
        self.write_map: Dict[int, int] = {}
        #: Set when a peer (or the runtime) kills this attempt; the
        #: scheduler's check_aborted poll delivers the abort before the
        #: thread executes another operation.
        self.doomed = False
        #: Wound attribution for the pending abort (also set on
        #: self-aborts, so on_abort can advance the fallback ladder).
        self.abort_kind = ""
        self.abort_by = -1
        #: True during commit write-back: the attempt can no longer be
        #: doomed, and conflicting peers must keep self-aborting until
        #: the write-back is complete.
        self.committing = False


class HtmBestEffortRuntime(TMBackend):
    """Best-effort HTM with capacity bounds and a fallback ladder."""

    name = "HTM-BE"

    def __init__(
        self,
        machine: FlexTMMachine,
        spec: Optional[FallbackSpec] = None,
    ):
        self.machine = machine
        self.read_capacity = machine.params.htm_read_lines
        self.write_capacity = machine.params.htm_write_lines
        self.policy = FallbackPolicy(spec)
        self.policy.bind_runtime(self)
        machine.set_htm_fallback(self.policy)
        self._offset_bits = machine.params.offset_bits
        #: thread id -> in-flight attempt.
        self._active: Dict[int, HtmThreadState] = {}

    # ---------------------------------------------------------------- helpers

    def _line(self, address: int) -> int:
        return address >> self._offset_bits

    def _state(self, thread) -> HtmThreadState:
        return self._active[thread.thread_id]

    def _raise_if_doomed(self, state: HtmThreadState) -> None:
        if state.doomed:
            raise TransactionAborted(
                "attempt doomed", by=state.abort_by, conflict=state.abort_kind
            )

    def _self_abort(
        self, state: HtmThreadState, kind: str, by: int, reason: str
    ) -> None:
        """Record attribution for on_abort, then unwind the attempt."""
        state.abort_kind = kind
        state.abort_by = by
        raise TransactionAborted(reason, by=by, conflict=kind)

    def _doom(self, state: HtmThreadState, by: int, kind: str) -> None:
        state.doomed = True
        state.abort_kind = kind
        state.abort_by = by

    def _check_conflict(
        self, thread, state: HtmThreadState, line: int, is_write: bool
    ) -> None:
        """Eager detection: the requesting attempt aborts on any clash.

        Doomed peers are skipped (their speculative state is already
        dead); committing peers are not — until their write-back
        completes, touching their lines must keep aborting the
        requestor, or it could observe a torn commit.
        """
        if state.path == IRREVOCABLE_PATH:
            return  # peers were drained; the holder cannot lose
        tid = thread.thread_id
        for other_tid, other in self._active.items():
            if other_tid == tid or other.doomed:
                continue
            if line in other.write_lines or (is_write and line in other.read_lines):
                self._self_abort(
                    state,
                    kind="htm-conflict",
                    by=other_tid,
                    reason=(
                        f"line {line:#x} conflicts with thread "
                        f"{other_tid}'s in-flight attempt"
                    ),
                )

    # ---------------------------------------------------------- TMBackend API

    def begin(self, thread) -> Iterator[Tuple]:
        tid = thread.thread_id
        policy = self.policy
        poll = policy.spec.lock_poll_cycles
        path = policy.path_for(tid)
        if path == IRREVOCABLE_PATH:
            policy.token.enqueue(tid)
            while not policy.token.try_grant(tid):
                yield ("work", poll)
            policy.note_grant()
            # Drain: kill every in-flight peer that is not already
            # committing, then wait out the committers' write-backs.
            for other in self._active.values():
                if not other.committing and not other.doomed:
                    self._doom(other, by=tid, kind="fallback")
                    policy.note_doom()
            while any(other.committing for other in self._active.values()):
                yield ("work", poll)
            policy.serial_active = True
        else:
            # No new attempt starts while the system drains into (or
            # runs in) serial mode — the htm-sw-mutex invariant.
            while policy.token.busy:
                yield ("work", poll)
        self._active[tid] = HtmThreadState(path)
        yield ("work", BEGIN_CYCLES[path])

    def read(self, thread, address: int) -> Iterator[Tuple]:
        state = self._state(thread)
        self._raise_if_doomed(state)
        if state.path == SW_PATH:
            yield ("work", SW_READ_BOOKKEEPING_CYCLES)
        if address in state.write_map:
            return state.write_map[address]
        line = self._line(address)
        self._check_conflict(thread, state, line, is_write=False)
        if line not in state.write_lines and line not in state.read_lines:
            if state.path == HTM_PATH and len(state.read_lines) >= self.read_capacity:
                self._self_abort(
                    state,
                    kind="capacity",
                    by=-1,
                    reason=(
                        f"read set exceeds {self.read_capacity} "
                        f"hardware lines"
                    ),
                )
            state.read_lines.add(line)
        result = yield ("load", address)
        return result.value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        state = self._state(thread)
        self._raise_if_doomed(state)
        if state.path == SW_PATH:
            yield ("work", SW_WRITE_BOOKKEEPING_CYCLES)
        line = self._line(address)
        self._check_conflict(thread, state, line, is_write=True)
        if line not in state.write_lines:
            if state.path == HTM_PATH and len(state.write_lines) >= self.write_capacity:
                self._self_abort(
                    state,
                    kind="capacity",
                    by=-1,
                    reason=(
                        f"write set exceeds {self.write_capacity} "
                        f"hardware lines"
                    ),
                )
            state.write_lines.add(line)
        state.write_map[address] = value
        yield ("work", HTM_STORE_CYCLES)

    def commit(self, thread) -> Iterator[Tuple]:
        tid = thread.thread_id
        state = self._state(thread)
        self._raise_if_doomed(state)
        yield ("work", COMMIT_CYCLES[state.path])
        state.committing = True
        for address, value in state.write_map.items():
            yield ("store", address, value)
        del self._active[tid]
        self.policy.note_commit(tid, state.path)

    def on_abort(self, thread) -> Iterator[Tuple]:
        tid = thread.thread_id
        state = self._active.pop(tid, None)
        if state is not None:
            self.policy.note_abort(tid, state.abort_kind)
            if self.policy.token.holder == tid:
                # An irrevocable attempt should be unkillable, but if
                # the workload itself aborts it the token must not leak.
                self.policy.serial_active = False
                self.policy.token.release(tid)
        yield ("work", ABORT_CYCLES)

    def check_aborted(self, thread) -> bool:
        state = self._active.get(thread.thread_id)
        return state is not None and state.doomed and not state.committing

    def suspend(self, thread):
        state = self._active.get(thread.thread_id)
        if (
            state is not None
            and state.path == HTM_PATH
            and not state.committing
            and not state.doomed
        ):
            # A context switch destroys hardware transactional state.
            self._doom(state, by=-1, kind="explicit")
        return None

    def resume(self, thread, processor: int, saved):
        state = self._active.get(thread.thread_id)
        if state is not None and state.doomed and not state.committing:
            return "aborted"
        return None

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        return self.policy.backoff(aborts_in_a_row)

    # ------------------------------------------------- scheduler/probe hooks

    def abort_attribution(self, thread) -> Optional[Tuple[int, str]]:
        """Attribution for aborts the scheduler delivers (doomed attempts)."""
        state = self._active.get(thread.thread_id)
        if state is not None and state.doomed and state.abort_kind:
            return state.abort_by, state.abort_kind
        return None

    def escalation_counters(self) -> Dict[str, int]:
        return self.policy.escalation_counters()

    def active_attempts(self) -> List[Tuple[int, str, bool, bool]]:
        """``(thread_id, path, committing, doomed)`` rows, sorted."""
        return [
            (tid, state.path, state.committing, state.doomed)
            for tid, state in sorted(self._active.items())
        ]
