"""Shared STM plumbing: ownership-record tables and per-thread state.

The word-based STMs (TL-2, and our RSTM model, which treats one cache
line as one object) hash data addresses onto a table of *ownership
records* (orecs) living in simulated memory, so metadata traffic pays
real cache/coherence costs — the indirection the paper blames for the
2x cache-miss inflation in Delaunay.

An orec word encodes ``version << 1 | locked``; versions come from a
global clock word (TL-2) or per-orec counters (RSTM model).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.machine import FlexTMMachine, WORD_BYTES


def encode_locked(owner: int) -> int:
    """Lock word value for a held orec (owner id in the upper bits)."""
    return (owner << 1) | 1


def is_locked(word: int) -> bool:
    return bool(word & 1)


def version_of(word: int) -> int:
    return word >> 1


def encode_version(version: int) -> int:
    return version << 1


class LockTable:
    """A table of orecs in simulated memory, hashed by line address."""

    def __init__(self, machine: FlexTMMachine, num_orecs: int = 16384):
        if num_orecs <= 0 or num_orecs & (num_orecs - 1):
            raise ValueError("num_orecs must be a positive power of two")
        self.machine = machine
        self.num_orecs = num_orecs
        self.base = machine.allocate_words(num_orecs, line_aligned=True)
        self._offset_bits = machine.params.offset_bits
        # Metadata tables count as warmed-up state (see warm_region).
        machine.warm_region(self.base, num_orecs * WORD_BYTES)

    def orec_address(self, data_address: int) -> int:
        """Orec word guarding a data address (line granularity)."""
        line = data_address >> self._offset_bits
        # Multiplicative hash spreads neighbouring lines across orecs.
        index = (line * 2654435761) & (self.num_orecs - 1)
        return self.base + index * WORD_BYTES


@dataclasses.dataclass
class StmThreadState:
    """Per-thread, per-attempt software transaction state."""

    read_version: int = 0
    #: (orec_address, observed_version) pairs, in open order.
    read_set: List[Tuple[int, int]] = dataclasses.field(default_factory=list)
    #: address -> buffered value (redo log).
    write_map: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: orec addresses covering the write set, deduplicated, in order.
    write_orecs: List[int] = dataclasses.field(default_factory=list)
    status_address: int = 0
    attempts: int = 0

    def reset(self) -> None:
        self.read_set = []
        self.write_map = {}
        self.write_orecs = []

    def note_write_orec(self, orec_address: int) -> bool:
        """Record an orec for the write set; True if newly added."""
        if orec_address in self.write_orecs:
            return False
        self.write_orecs.append(orec_address)
        return True
