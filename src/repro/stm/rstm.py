"""RSTM — non-blocking object-based STM, invisible readers (WS1 baseline).

Configured as in the paper (Section 7.2): invisible readers with
self-validation.  Our model treats one cache line as one object.  The
cost structure reproduces RSTM's published profile:

* **metadata indirection** — every open reads a shared header word
  (real coherence traffic; the source of the ~2x cache-miss inflation
  the paper reports for Delaunay);
* **copying** — the first write to an object clones it into a private
  buffer (simulated loads/stores on real addresses plus fixed work);
* **incremental validation** — invisible readers re-validate their
  entire read set on every new open, the O(reads^2) term that consumes
  up to 80% of RandomGraph's execution time;
* **eager ownership** — writers acquire headers at first write and may
  abort enemies through their status words (non-blocking), arbitrated
  by the same Polka manager as every other system.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.machine import FlexTMMachine, WORD_BYTES
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.runtime.api import TMBackend
from repro.runtime.contention import ConflictManager, Decision, PolkaManager
from repro.sim.rng import DeterministicRng
from repro.stm.base import LockTable, StmThreadState, encode_locked, encode_version, is_locked, version_of

#: Per-open fixed bookkeeping (descriptor checks, set insertion).
READ_BOOKKEEPING_CYCLES = 14
WRITE_BOOKKEEPING_CYCLES = 16
#: Incremental validation: cycles per previously opened object,
#: re-checked on every new open (headers are usually cached).
VALIDATE_PER_ENTRY_CYCLES = 2
#: Clone cost beyond the simulated copy traffic.
CLONE_FIXED_CYCLES = 20
#: Words of copy traffic simulated per clone (object = one line).
CLONE_COPY_WORDS = 3


class RstmRuntime(TMBackend):
    """The RSTM model."""

    name = "RSTM"

    def __init__(
        self,
        machine: FlexTMMachine,
        num_orecs: int = 1024,
        manager: ConflictManager = None,
        rng: DeterministicRng = None,
    ):
        self.machine = machine
        self.rng = rng or DeterministicRng(0x757)
        self.manager = manager or PolkaManager()
        self.headers = LockTable(machine, num_orecs)
        self._clone_area = machine.allocate_words(CLONE_COPY_WORDS * 64, line_aligned=True)

    def _state(self, thread) -> StmThreadState:
        if not hasattr(thread, "stm_state") or thread.stm_state is None:
            thread.stm_state = StmThreadState()
        return thread.stm_state

    def _status_address(self, thread) -> int:
        if getattr(thread, "stm_status_address", 0) == 0:
            thread.stm_status_address = self.machine.allocate(
                self.machine.params.line_bytes, line_aligned=True
            )
        return thread.stm_status_address

    # --------------------------------------------------------------- lifecycle

    def begin(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        state.reset()
        state.attempts += 1
        state.status_address = self._status_address(thread)
        self.register_status(thread)
        self._states_by_thread[thread.thread_id] = state
        #: (orec_address, pre-lock word) for headers we own.
        thread.rstm_owned = []
        thread.rstm_pending = None
        yield ("store", state.status_address, TxStatus.ACTIVE)

    def read(self, thread, address: int) -> Iterator[Tuple]:
        state = self._state(thread)
        yield ("work", READ_BOOKKEEPING_CYCLES)
        if address in state.write_map:
            return state.write_map[address]
        header_address = self.headers.orec_address(address)
        word = yield from self._open(thread, header_address)
        data = yield ("load", address)
        # Invisible readers: self-validate on every open so no zombie
        # ever returns data from a torn snapshot (opacity).  The checks
        # peek the header words directly — no yield boundary separates
        # them from the data load above, so the view they certify is
        # the view the transaction actually returns.  First the object
        # just read: its header must not have moved between the open
        # and the data load.
        if self.machine.memory.read(header_address) != word:
            raise TransactionAborted("RSTM open validation failed")
        # Then every earlier entry (the O(R^2) term); its cycle cost is
        # charged below (headers are usually cached).
        owned = {owned_address for owned_address, _ in thread.rstm_owned}
        for seen_header, observed in state.read_set:
            if seen_header in owned:
                continue
            if self.machine.memory.read(seen_header) != observed:
                raise TransactionAborted("RSTM incremental validation failed")
        state.read_set.append((header_address, word))
        if len(state.read_set) > 1:
            yield ("work", VALIDATE_PER_ENTRY_CYCLES * (len(state.read_set) - 1))
        return data.value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        state = self._state(thread)
        yield ("work", WRITE_BOOKKEEPING_CYCLES)
        header_address = self.headers.orec_address(address)
        if state.note_write_orec(header_address):
            acquired_word = yield from self._acquire(thread, header_address)
            # Upgrade hazard: if we read this object earlier, the
            # version we saw must still be current at acquire time —
            # otherwise another writer committed in between and our
            # earlier read is stale.
            for seen_header, observed in state.read_set:
                if seen_header == header_address and observed != acquired_word:
                    raise TransactionAborted("RSTM upgrade validation failed")
            yield from self._clone(address)
        state.write_map[address] = value

    def commit(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        owned = {address for address, _ in thread.rstm_owned}
        for header_address, observed in state.read_set:
            if header_address in owned:
                continue
            current = yield ("load", header_address)
            if current.value != observed:
                raise TransactionAborted("RSTM commit validation failed")
        result = yield ("cas", state.status_address, TxStatus.ACTIVE, TxStatus.COMMITTED)
        if not result.success:
            raise TransactionAborted("RSTM lost commit CAS")
        for address, value in state.write_map.items():
            yield ("store", address, value)
        for header_address, old_word in thread.rstm_owned:
            yield ("store", header_address, encode_version(version_of(old_word) + 1))
        thread.rstm_owned = []

    def on_abort(self, thread) -> Iterator[Tuple]:
        state = self._state(thread)
        pending = getattr(thread, "rstm_pending", None)
        if pending is not None:
            header_address, old_word = pending
            current = yield ("load", header_address)
            if current.value == encode_locked(thread.thread_id):
                yield ("store", header_address, old_word)
            thread.rstm_pending = None
        for header_address, old_word in getattr(thread, "rstm_owned", []):
            yield ("store", header_address, old_word)
        thread.rstm_owned = []
        state.reset()
        yield ("work", 10)

    def check_aborted(self, thread) -> bool:
        state = getattr(thread, "stm_state", None)
        if state is None or not thread.in_transaction or state.status_address == 0:
            return False
        return self.machine.memory.read(state.status_address) == TxStatus.ABORTED

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        return self.manager.retry_backoff(aborts_in_a_row)

    # ----------------------------------------------------------------- helpers

    def _open(self, thread, header_address: int) -> Iterator[Tuple]:
        """Read a header, resolving writer conflicts via the manager.

        Readers cannot proceed while a header is locked: they spin per
        the manager's rulings and, after wounding the owner, wait for
        its cleanup to restore the header — the convoying cost the
        paper attributes to STMs on legacy hardware.
        """
        word = yield from self._wait_unlocked(thread, header_address, role="reader")
        return word

    def _acquire(self, thread, header_address: int) -> Iterator[Tuple]:
        """Eagerly take ownership of an object's header.

        Returns the pre-lock header word so the caller can validate
        earlier reads of the same object.
        """
        while True:
            word = yield from self._wait_unlocked(thread, header_address, role="writer")
            # A wound can be delivered at any yield boundary — including
            # right after this CAS lands.  Record the acquisition intent
            # *before* issuing it so on_abort can release a header whose
            # ownership we won but never got to book.
            thread.rstm_pending = (header_address, word)
            result = yield ("cas", header_address, word, encode_locked(thread.thread_id))
            thread.rstm_pending = None
            if result.success:
                thread.rstm_owned.append((header_address, word))
                return word

    def _wait_unlocked(self, thread, header_address: int, role: str) -> Iterator[Tuple]:
        """Spin until a header is free (or ours); returns its word."""
        state = self._state(thread)
        attempt = 0
        while True:
            current = yield ("load", header_address)
            word = current.value
            if not is_locked(word) or (word >> 1) == thread.thread_id:
                return word
            owner = word >> 1
            my_karma = len(state.read_set) + len(state.write_map)
            enemy_state = self._states_by_thread.get(owner)
            enemy_karma = (
                len(enemy_state.read_set) + len(enemy_state.write_map)
                if enemy_state is not None
                else 8
            )
            ruling = self.manager.decide(attempt, my_karma, enemy_karma)
            attempt += 1
            if ruling.decision is Decision.WAIT:
                yield ("work", max(1, ruling.backoff_cycles))
                continue
            if ruling.decision is Decision.ABORT_SELF:
                raise TransactionAborted(f"RSTM {role} self-abort", by=owner)
            yield from self._abort_owner(owner)
            # Wounded owner releases the header in its on_abort; give it
            # a beat and re-examine.
            yield ("work", 16)

    def _abort_owner(self, owner_thread_id: int) -> Iterator[Tuple]:
        """Non-blocking enemy abort through its status word."""
        status_address = self._status_by_thread.get(owner_thread_id, 0)
        if status_address:
            yield ("cas", status_address, TxStatus.ACTIVE, TxStatus.ABORTED)
        else:
            yield ("work", 4)

    @property
    def _status_by_thread(self):
        # Built lazily from threads that have begun at least once.
        mapping = getattr(self, "_status_map", None)
        if mapping is None:
            mapping = {}
            self._status_map = mapping
        return mapping

    @property
    def _states_by_thread(self):
        mapping = getattr(self, "_state_map", None)
        if mapping is None:
            mapping = {}
            self._state_map = mapping
        return mapping

    def register_status(self, thread) -> None:
        self._status_by_thread[thread.thread_id] = self._status_address(thread)

    def _clone(self, address: int) -> Iterator[Tuple]:
        """Copy-on-write: pull the object and write a private clone."""
        yield ("work", CLONE_FIXED_CYCLES)
        base = address & ~(self.machine.params.line_bytes - 1)
        for word in range(CLONE_COPY_WORDS):
            source = yield ("load", base + word * WORD_BYTES)
            yield ("store", self._clone_area + word * WORD_BYTES, source.value)
