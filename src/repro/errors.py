"""Exception hierarchy for the FlexTM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when system parameters are inconsistent or out of range."""


class ProtocolError(ReproError):
    """Raised when the coherence protocol reaches an illegal state.

    These indicate bugs in protocol logic (or deliberately injected
    faults in tests), never expected runtime conditions.
    """


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """Control-flow signal: the running transaction has been aborted.

    Raised inside a transactional thread when its status word is changed
    to ``ABORTED`` by an enemy (delivered through the alert-on-update
    handler) or when the transaction aborts itself.  The runtime catches
    it and restarts the transaction.
    """

    def __init__(self, reason: str = "aborted", *, by: int | None = None):
        super().__init__(reason)
        self.reason = reason
        self.by = by


class IllegalOperation(TransactionError):
    """Raised when an API call is made in the wrong transaction state."""


class OverflowTableError(ReproError):
    """Raised on misuse of the overflow-table controller."""


class SchedulerError(ReproError):
    """Raised on scheduler misuse (e.g., stepping a finished machine)."""


class WatchpointError(ReproError):
    """Raised on FlexWatcher misconfiguration."""
