"""Exception hierarchy for the FlexTM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when system parameters are inconsistent or out of range."""


class ProtocolError(ReproError):
    """Raised when the coherence protocol reaches an illegal state.

    These indicate bugs in protocol logic (or deliberately injected
    faults in tests), never expected runtime conditions.
    """


class InvariantViolation(ProtocolError):
    """Raised by the runtime invariant checker (repro.chaos.invariants).

    Carries which invariant failed plus a human-readable account of the
    offending machine state, so a chaos run that breaks the protocol
    produces a structured diagnosis instead of silent corruption.
    """

    def __init__(self, invariant: str, detail: str):
        super().__init__(f"[{invariant}] {detail}")
        self.invariant = invariant
        self.detail = detail


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """Control-flow signal: the running transaction has been aborted.

    Raised inside a transactional thread when its status word is changed
    to ``ABORTED`` by an enemy (delivered through the alert-on-update
    handler) or when the transaction aborts itself.  The runtime catches
    it and restarts the transaction.
    """

    def __init__(
        self,
        reason: str = "aborted",
        *,
        by: int | None = None,
        conflict: str = "",
    ):
        super().__init__(reason)
        self.reason = reason
        self.by = by
        #: Conflict type that caused the wound ("R-W" / "W-R" / "W-W" /
        #: "SI" / "migration" / "watchdog"), "" when unattributed.
        self.conflict = conflict


class IllegalOperation(TransactionError):
    """Raised when an API call is made in the wrong transaction state."""


class OverflowTableError(ReproError):
    """Raised on misuse of the overflow-table controller."""


class SchedulerError(ReproError):
    """Raised on scheduler misuse (e.g., stepping a finished machine)."""


class WatchpointError(ReproError):
    """Raised on FlexWatcher misconfiguration."""
