"""The TM runtime: programming model, backends, threads, scheduler.

This is the software half of FlexTM's hardware/software split — the
BEGIN/END_TRANSACTION macros, the Commit() routine of Figure 3, eager
conflict-manager dispatch, and the OS-level context-switch machinery —
plus the baseline TM systems (in :mod:`repro.stm`) that share the same
programming model so workloads run unmodified on every system.
"""

from repro.runtime.api import TMBackend, TxContext
from repro.runtime.contention import (
    AggressiveManager,
    ConflictManager,
    PolkaManager,
    TimidManager,
    TimestampManager,
)
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.tmtypes import TArray, TCounter, TQueue, TStack, TVar
from repro.runtime.txthread import TxThread
from repro.runtime.scheduler import Scheduler, RunResult

__all__ = [
    "TMBackend",
    "TxContext",
    "ConflictManager",
    "PolkaManager",
    "AggressiveManager",
    "TimidManager",
    "TimestampManager",
    "FlexTMRuntime",
    "TxThread",
    "Scheduler",
    "RunResult",
    "TVar",
    "TCounter",
    "TArray",
    "TQueue",
    "TStack",
]
