"""Typed transactional data structures over simulated memory.

Workload authors shouldn't juggle raw addresses.  These helpers wrap
allocation + field layout and expose generator methods that compose
with :class:`~repro.runtime.api.TxContext` the same way the built-in
workloads do::

    counter = TCounter(machine)
    queue = TQueue(machine, capacity=64)

    def producer(ctx):
        yield from counter.increment(ctx)
        yield from queue.enqueue(ctx, 42)

All structures are padded to cache-line granularity where false sharing
would otherwise distort conflict behaviour — the same layout discipline
the paper's benchmarks use.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Tuple

from repro.core.machine import FlexTMMachine, WORD_BYTES

#: Central registry of wound/abort-cause kinds.  Every ``kind`` string
#: that reaches :meth:`~repro.core.machine.FlexTMMachine.stage_wound`
#: or :meth:`~repro.core.machine.FlexTMMachine.force_abort` — and
#: therefore every key of ``RunResult.aborts_by_kind`` except the
#: :data:`UNATTRIBUTED_KIND` fallback — must appear here.  The simcheck
#: rule ``SIM-E203`` resolves the literal kind argument at every emit
#: site and fails the build on an unregistered string, the same
#: contract the tracer-event registry enforces for event kinds.
WOUND_KIND_REGISTRY: Dict[str, str] = {
    # -- CST conflict kinds (Figure 1's conflict taxonomy).
    "R-W": "requestor's read hit an enemy's write signature",
    "W-R": "requestor's write hit an enemy's exposed read",
    "W-W": "requestor's write hit an enemy's write signature",
    # -- strong isolation (Section 3.5).
    "SI": "non-transactional store aborted a conflicting transaction",
    # -- OS / runtime interventions.
    "stall-deadlock": "possible-deadlock trap self-aborted a stalling "
                      "LogTM-SE transaction",
    "migration": "descheduled transaction resumed on a different core",
    "watchdog": "livelock watchdog force-aborted the top wounder",
    "irrevocable": "serial-irrevocable grant drained an in-flight peer",
    # -- scripted adversarial schedules (repro.adversary).
    "adversary": "schedule-script wound directive force-aborted the thread",
    # -- best-effort HTM backend (repro.stm.htmbe).
    "capacity": "hardware read/write set exceeded its capacity bound",
    "htm-conflict": "remote access conflicted with a best-effort HTM "
                    "attempt (attacker self-aborts)",
    "explicit": "best-effort HTM attempt cancelled by the runtime "
                "(context switch / migration kills the hardware state)",
    "fallback": "software-fallback lock acquisition drained an in-flight "
                "HTM peer",
}

#: Every registered wound kind, for membership tests and docs/tests.
WOUND_KINDS: FrozenSet[str] = frozenset(WOUND_KIND_REGISTRY)

#: The aggregation key used when an abort carries no attribution (the
#: kind is empty); not a wound kind itself — emit sites must never
#: stage it.
UNATTRIBUTED_KIND = "unattributed"


class TVar:
    """A single transactional word on its own cache line."""

    def __init__(self, machine: FlexTMMachine, initial: int = 0):
        self.machine = machine
        self.address = machine.allocate(machine.params.line_bytes, line_aligned=True)
        machine.memory.write(self.address, initial)
        machine.warm_region(self.address, WORD_BYTES)

    def read(self, ctx) -> Iterator[Tuple]:
        value = yield from ctx.read(self.address)
        return value

    def write(self, ctx, value: int) -> Iterator[Tuple]:
        yield from ctx.write(self.address, value)

    def peek(self) -> int:
        """Untimed debug view of the committed value."""
        return self.machine.memory.read(self.address)


class TCounter(TVar):
    """A TVar with read-modify-write helpers."""

    def increment(self, ctx, amount: int = 1) -> Iterator[Tuple]:
        value = yield from ctx.read(self.address)
        yield from ctx.write(self.address, value + amount)
        return value + amount

    def decrement(self, ctx, amount: int = 1) -> Iterator[Tuple]:
        value = yield from self.increment(ctx, -amount)
        return value


class TArray:
    """A fixed-length array of transactional words.

    ``padded=True`` (default) gives each element its own cache line so
    independent elements never conflict; ``padded=False`` packs eight
    words per line, deliberately sharing lines (for false-sharing
    studies).
    """

    def __init__(self, machine: FlexTMMachine, length: int, padded: bool = True):
        if length <= 0:
            raise ValueError("length must be positive")
        self.machine = machine
        self.length = length
        self._stride = machine.params.line_bytes if padded else WORD_BYTES
        self.base = machine.allocate(length * self._stride, line_aligned=True)
        machine.warm_region(self.base, length * self._stride)

    def address_of(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        return self.base + index * self._stride

    def get(self, ctx, index: int) -> Iterator[Tuple]:
        value = yield from ctx.read(self.address_of(index))
        return value

    def set(self, ctx, index: int, value: int) -> Iterator[Tuple]:
        yield from ctx.write(self.address_of(index), value)

    def peek(self, index: int) -> int:
        return self.machine.memory.read(self.address_of(index))


class TQueue:
    """A bounded FIFO ring buffer, fully transactional.

    Head/tail counters live on separate lines; slots are padded.
    ``enqueue`` returns False when full, ``dequeue`` returns None when
    empty — non-blocking semantics, so the caller decides whether to
    retry in a later transaction.
    """

    def __init__(self, machine: FlexTMMachine, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.machine = machine
        self.capacity = capacity
        self._head = TVar(machine)  # next index to dequeue
        self._tail = TVar(machine)  # next index to enqueue
        self._slots = TArray(machine, capacity)

    def enqueue(self, ctx, value: int) -> Iterator[Tuple]:
        head = yield from self._head.read(ctx)
        tail = yield from self._tail.read(ctx)
        if tail - head >= self.capacity:
            return False
        yield from self._slots.set(ctx, tail % self.capacity, value)
        yield from self._tail.write(ctx, tail + 1)
        return True

    def dequeue(self, ctx) -> Iterator[Tuple]:
        head = yield from self._head.read(ctx)
        tail = yield from self._tail.read(ctx)
        if head == tail:
            return None
        value = yield from self._slots.get(ctx, head % self.capacity)
        yield from self._head.write(ctx, head + 1)
        return value

    def size(self, ctx) -> Iterator[Tuple]:
        head = yield from self._head.read(ctx)
        tail = yield from self._tail.read(ctx)
        return tail - head

    def peek_size(self) -> int:
        return self._tail.peek() - self._head.peek()


class TStack:
    """A linked-list LIFO with line-aligned nodes.

    Nodes are allocated per push (aborted pushes leak simulator memory,
    like every allocating workload here — see DESIGN.md).
    """

    _VALUE = 0
    _NEXT = 1

    def __init__(self, machine: FlexTMMachine):
        self.machine = machine
        self._top = TVar(machine)

    def push(self, ctx, value: int) -> Iterator[Tuple]:
        node = self.machine.allocate(
            max(2 * WORD_BYTES, self.machine.params.line_bytes), line_aligned=True
        )
        top = yield from self._top.read(ctx)
        yield from ctx.write(node + self._VALUE * WORD_BYTES, value)
        yield from ctx.write(node + self._NEXT * WORD_BYTES, top)
        yield from self._top.write(ctx, node)

    def pop(self, ctx) -> Iterator[Tuple]:
        top = yield from self._top.read(ctx)
        if not top:
            return None
        value = yield from ctx.read(top + self._VALUE * WORD_BYTES)
        successor = yield from ctx.read(top + self._NEXT * WORD_BYTES)
        yield from self._top.write(ctx, successor)
        return value

    def peek_depth(self) -> int:
        """Untimed walk of the committed stack."""
        depth, node = 0, self._top.peek()
        while node and depth < 1_000_000:
            depth += 1
            node = self.machine.memory.read(node + self._NEXT * WORD_BYTES)
        return depth
