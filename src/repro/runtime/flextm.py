"""The FlexTM software runtime (Sections 3.5–3.6).

Implements BEGIN_TRANSACTION / END_TRANSACTION over the hardware
machine: descriptor setup, register checkpointing, TSW ALoading, the
eager conflict-manager dispatch on Threatened/Exposed-Read responses,
and the lazy Commit() routine of Figure 3 — copy-and-clear the W-R and
W-W registers, CAS each named enemy's TSW from ACTIVE to ABORTED, then
CAS-Commit, looping if new conflicts arrived in the window.

All of commit/abort is purely local software: no commit token, no
write-set broadcast, no ticket serialization.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.coherence.messages import AccessKind
from repro.core.cmt import ConflictManagementTable
from repro.core.descriptor import ConflictMode, RunState, TransactionDescriptor
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.obs.tracer import classify_conflict
from repro.runtime.api import TMBackend
from repro.runtime.contention import ConflictManager, Decision, PolkaManager

#: Register-checkpoint (setjmp) cost at BEGIN_TRANSACTION; the paper
#: notes it is FlexTM's main remaining software overhead and is nearly
#: constant across thread counts.
CHECKPOINT_CYCLES = 25
#: Back-off before re-issuing a NACKed request (committed-OT copy-back).
NACK_RETRY_CYCLES = 40


def _bits(mask: int):
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


class FlexTMRuntime(TMBackend):
    """TM backend driving the FlexTM hardware."""

    name = "FlexTM"

    def __init__(
        self,
        machine: FlexTMMachine,
        mode: ConflictMode = ConflictMode.EAGER,
        manager: Optional[ConflictManager] = None,
        clean_r_w: bool = True,
    ):
        self.machine = machine
        self.mode = mode
        self.manager = manager or PolkaManager()
        #: Figure 3's optional hygiene: clean self out of enemies' W-R
        #: at commit to avoid spurious aborts of the next incarnation.
        self.clean_r_w = clean_r_w
        self.cmt = ConflictManagementTable(machine.params.num_processors)

    # ----------------------------------------------------------------- begin

    def begin(self, thread) -> Iterator[Tuple]:
        # Subsumption nesting (Section 3.5): an inner BEGIN merely
        # deepens the outermost transaction; only depth 0 touches
        # hardware.  An abort unwinds the whole nest.
        depth = getattr(thread, "nest_depth", 0)
        if depth > 0:
            thread.nest_depth = depth + 1
            yield ("work", 1)
            return
        thread.nest_depth = 1
        proc_id = thread.processor
        descriptor = thread.descriptor
        if descriptor is None:
            tsw = self.machine.allocate(self.machine.params.line_bytes, line_aligned=True)
            descriptor = TransactionDescriptor(
                thread_id=thread.thread_id, tsw_address=tsw, mode=self.mode
            )
            thread.descriptor = descriptor
        descriptor.incarnation += 1
        descriptor.accesses = 0
        # The E/L bit is re-derived per attempt: the degradation ladder
        # may flip a starving lazy transaction to eager (paper §Policy
        # flexibility).  Without a controller this is always self.mode.
        resilience = self.machine.resilience
        descriptor.mode = (
            resilience.mode_for(thread, self.mode)
            if resilience is not None
            else self.mode
        )
        descriptor.run_state = RunState.RUNNING
        descriptor.saved = None
        self.machine.register_descriptor(descriptor)
        self.cmt.register(proc_id, descriptor)
        proc = self.machine.processors[proc_id]
        proc.begin_transaction(descriptor)
        proc.alerts.clear()
        yield ("store", descriptor.tsw_address, TxStatus.ACTIVE)
        yield ("aload", descriptor.tsw_address)
        yield ("work", CHECKPOINT_CYCLES)

    # ------------------------------------------------------------ read/write

    def read(self, thread, address: int) -> Iterator[Tuple]:
        result = yield from self._issue(thread, ("tload", address))
        if thread.descriptor.mode is ConflictMode.EAGER and result.conflicts:
            yield from self._manage_conflicts(thread, result.conflicts, AccessKind.TLOAD)
        return result.value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        result = yield from self._issue(thread, ("tstore", address, value))
        if thread.descriptor.mode is ConflictMode.EAGER and result.conflicts:
            yield from self._manage_conflicts(thread, result.conflicts, AccessKind.TSTORE)

    def _issue(self, thread, op: Tuple) -> Iterator[Tuple]:
        """Issue an op, retrying while the directory NACKs it."""
        while True:
            result = yield op
            if not result.nacked:
                return result
            yield ("work", NACK_RETRY_CYCLES)

    # ------------------------------------------------- eager conflict manager

    def _manage_conflicts(self, thread, conflicts, access=AccessKind.TSTORE) -> Iterator[Tuple]:
        """CMPC dispatch: resolve each conflicting processor in turn.

        Resolution ends with the local CST bit for that processor
        cleared — which is why an eager transaction normally reaches its
        commit point with empty CSTs.
        """
        my_descriptor = thread.descriptor
        proc = self.machine.processors[thread.processor]
        for enemy_proc, response in conflicts:
            cst_kind = classify_conflict(access, response) or ""
            attempt = 0
            while True:
                enemy = self._active_enemy(enemy_proc, my_descriptor)
                if enemy is None:
                    break  # conflict resolved itself (enemy finished)
                ruling = self.manager.decide(attempt, my_descriptor.accesses, enemy.accesses)
                if ruling.decision is Decision.WAIT:
                    attempt += 1
                    backoff = max(1, ruling.backoff_cycles)
                    yield ("work", backoff)
                    tracer = self.machine.tracer
                    if tracer.enabled and thread.processor is not None:
                        tracer.stall(
                            thread.processor,
                            self.machine.processors[thread.processor].clock.now,
                            backoff,
                            enemy=enemy_proc,
                        )
                    metrics = self.machine.metrics
                    if metrics is not None and thread.processor is not None:
                        metrics.on_stall(
                            thread.processor,
                            self.machine.processors[thread.processor].clock.now,
                            backoff,
                        )
                    # A committing enemy aborts *us* during this window;
                    # the scheduler's abort poll unwinds the generator.
                    continue
                if ruling.decision is Decision.ABORT_ENEMY:
                    self.machine.stage_wound(enemy.tsw_address, thread.processor, cst_kind)
                    yield ("cas", enemy.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
                    break
                # ABORT_SELF
                self.machine.stage_wound(my_descriptor.tsw_address, enemy_proc, cst_kind)
                yield ("cas", my_descriptor.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
                raise TransactionAborted(
                    "self-abort by conflict manager", by=enemy_proc, conflict=cst_kind
                )
            proc.csts.r_w.clear_bit(enemy_proc)
            proc.csts.w_r.clear_bit(enemy_proc)
            proc.csts.w_w.clear_bit(enemy_proc)
            yield ("work", 3)

    def _active_enemy(self, enemy_proc: int, me: TransactionDescriptor):
        """The still-active conflicting descriptor on a processor, if any."""
        for descriptor in self.cmt.active_on(enemy_proc):
            if descriptor is me:
                continue
            if self.machine.read_status(descriptor) is TxStatus.ACTIVE:
                return descriptor
        return None

    # ----------------------------------------------------------------- commit

    def commit(self, thread) -> Iterator[Tuple]:
        depth = getattr(thread, "nest_depth", 1)
        if depth > 1:
            # Inner commit of a subsumed transaction: nothing to do.
            thread.nest_depth = depth - 1
            yield ("work", 1)
            return
        thread.nest_depth = 0
        proc_id = thread.processor
        proc = self.machine.processors[proc_id]
        descriptor = thread.descriptor
        self.machine.stats.histogram("cst.conflict_degree").record(len(proc.conflict_partners))
        # NOTE: Figure 3's optional hygiene — "T may clean itself out of
        # X's W-R, where X is in T's R-W" — must wait until T's own
        # CAS-Commit has succeeded.  Cleaning *before* committing races
        # with X's concurrent commit: if X also conflicts with T the
        # other way (write skew), the early clean erases X's only
        # reason to wound T, and both can commit.  Our serializability
        # oracle (tests/integration/test_recorded_serializability.py)
        # catches exactly this interleaving.
        cleaning_targets = list(proc.csts.r_w.processors()) if self.clean_r_w else []
        while True:
            # Figure 3, line 1: copy-and-clear W-R and W-W.
            w_r_mask = proc.csts.w_r.copy_and_clear()
            w_w_mask = proc.csts.w_w.copy_and_clear()
            mask = w_r_mask | w_w_mask
            yield ("work", 2)
            # Lines 2-3: abort every conflicting transaction.  A CST bit
            # for our *own* processor is legitimate: it names a
            # suspended transaction whose CMT home is this core.
            for enemy_proc in _bits(mask):
                cst_kind = "W-W" if (w_w_mask >> enemy_proc) & 1 else "W-R"
                for enemy in self.cmt.active_on(enemy_proc):
                    if enemy is descriptor:
                        continue
                    if enemy.run_state is RunState.SUSPENDED and not self._overlaps(proc, enemy):
                        continue
                    self.machine.stage_wound(enemy.tsw_address, proc_id, cst_kind)
                    yield ("cas", enemy.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
            # Line 4: CAS-Commit our own status word.
            result = yield ("cas_commit",)
            if result.success:
                descriptor.commits += 1
                # Safe point for the W-R hygiene: we are committed, so
                # enemies that CAS our TSW now simply fail; clearing our
                # bit only prevents spurious wounds of our *next*
                # incarnation.
                for reader_victim in cleaning_targets:
                    self.machine.processors[reader_victim].csts.w_r.clear_bit(proc_id)
                    yield ("work", 1)
                self._finish(thread)
                return
            if result.value != TxStatus.ACTIVE:
                raise TransactionAborted(
                    "lost the commit race",
                    by=descriptor.wounded_by,
                    conflict=descriptor.wound_kind,
                )
            # Line 5: still active, new conflicts arrived — go again.

    def _overlaps(self, proc, suspended: TransactionDescriptor) -> bool:
        """Software signature test against a suspended enemy (§5)."""
        saved = suspended.saved
        if saved is None:
            return True  # being switched right now; be conservative
        return proc.wsig.intersects(saved.rsig) or proc.wsig.intersects(saved.wsig)

    def _finish(self, thread) -> None:
        descriptor = thread.descriptor
        proc = self.machine.processors[thread.processor]
        self.cmt.unregister(descriptor)
        self.machine.unregister_descriptor(descriptor)
        proc.end_transaction()

    # ------------------------------------------------------------------ abort

    def on_abort(self, thread) -> Iterator[Tuple]:
        thread.nest_depth = 0  # an abort unwinds the entire nest
        descriptor = thread.descriptor
        proc = self.machine.processors[thread.processor]
        if proc.current is descriptor:
            proc.flash_abort()
            proc.end_transaction()
        self.cmt.unregister(descriptor)
        self.machine.unregister_descriptor(descriptor)
        yield ("work", 10)  # unwind / longjmp cost

    def check_aborted(self, thread) -> bool:
        """Scheduler poll: has an enemy flipped our TSW?

        Models the AOU delivery — the alert raised by the TSW-line
        invalidation makes the handler read the TSW and unwind.
        """
        descriptor = thread.descriptor
        if descriptor is None or not thread.in_transaction:
            return False
        proc = self.machine.processors[thread.processor]
        if proc.alerts.has_pending:
            proc.alerts.drain()
        return self.machine.read_status(descriptor) is TxStatus.ABORTED

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        return self.manager.retry_backoff(aborts_in_a_row)

    # -------------------------------------------------- context-switch hooks

    def suspend(self, thread):
        """OS suspend path (Section 5): spill state, install summaries."""
        descriptor = thread.descriptor
        if descriptor is None or not thread.in_transaction:
            return None
        proc = self.machine.processors[thread.processor]
        if proc.current is not descriptor:
            return None
        descriptor.run_state = RunState.SUSPENDED
        saved = proc.save_transactional_state()
        descriptor.saved = saved
        self.machine.summary.install(
            descriptor.thread_id, saved.rsig, saved.wsig, saved.last_processor
        )
        self.machine.register_suspended(descriptor)
        return saved

    def resume(self, thread, processor: int, saved) -> str:
        """OS resume path; returns "ok", "aborted", or "fresh".

        Migration to a different processor uses the paper's
        abort-and-restart policy (lazy versioning makes migration of
        speculative state complex, so FlexTM just doesn't).
        """
        descriptor = thread.descriptor
        if descriptor is None or saved is None:
            return "fresh"
        self.machine.summary.remove(descriptor.thread_id)
        self.machine.unregister_suspended(descriptor.thread_id)
        if self.machine.read_status(descriptor) is TxStatus.ABORTED:
            descriptor.saved = None
            return "aborted"
        if processor != saved.last_processor:
            # Routed through the machine so the abort carries attribution
            # and the TSW write stays invariant-checked.
            if not self.machine.force_abort(descriptor, by=-1, kind="migration"):
                # The TSW resolved while descheduled (e.g. the flash
                # commit landed but the commit path was interrupted);
                # the restart is still migration policy, so stamp the
                # attribution the CAS could not deliver.
                descriptor.wounded_by = -1
                descriptor.wound_kind = "migration"
            descriptor.saved = None
            self.machine.stats.counter("ctxsw.migration_aborts").increment()
            return "aborted"
        proc = self.machine.processors[processor]
        proc.restore_transactional_state(descriptor, saved)
        descriptor.run_state = RunState.RUNNING
        descriptor.saved = None
        self.cmt.register(processor, descriptor)
        return "ok"
