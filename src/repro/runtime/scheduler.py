"""The timing-driven multi-core scheduler.

The executor always steps the thread whose processor clock is furthest
behind (ties broken by processor id), so simulated interleavings follow
the relative progress of the cores — the property that makes contention
pathologies reproducible (DESIGN.md §4).

With more threads than processors (or an explicit quantum) the
scheduler context-switches: the OS path spills the running
transaction's hardware state through the backend's ``suspend`` hook,
installs summary signatures, and later resumes (or abort-restarts, on
migration) via ``resume`` — Section 5 of the paper.

Scheduling is also scriptable: a *director* (see
:class:`repro.adversary.director.ScheduleDirector`) may be installed to
take over processor selection.  Each iteration the scheduler asks the
director which processor to step instead of applying the
least-advanced-clock policy, and the director can use the first-class
control primitives — :meth:`Scheduler.park`, :meth:`Scheduler.place`,
:meth:`Scheduler.release_parked`, :meth:`Scheduler.free_processors` —
to pin exact interleavings.  The primitives reuse the same
suspend/resume path as quantum preemption, so scripted context switches
cost and behave exactly like organic ones.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional

from repro.core.machine import FlexTMMachine, MemoryOpResult
from repro.errors import InvariantViolation, SchedulerError, TransactionAborted
from repro.runtime.txthread import TxThread

#: OS cost to switch a thread out / in (trap + register state).
SWITCH_OUT_CYCLES = 400
SWITCH_IN_CYCLES = 400
#: Handler cost of a spurious (chaos-injected) alert: trap in, re-read
#: the TSW, see ACTIVE, return.
SPURIOUS_ALERT_CYCLES = 15


@dataclasses.dataclass
class RunResult:
    """Aggregate outcome of one simulation run."""

    cycles: int
    commits: int
    aborts: int
    nontx_items: int
    per_thread: List[Dict[str, int]]
    stats: Dict[str, int]
    conflict_degrees: List[int]
    #: Abort counts keyed by conflict kind ("R-W", "W-R", "W-W", "SI",
    #: "migration", "watchdog", "irrevocable", "unattributed").
    aborts_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Escalation-ladder counters (watchdog boosts/kills, resilience
    #: rung transitions, irrevocable grants) — empty unless a watchdog
    #: or degradation controller was armed.
    escalations: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: The run's EventTracer when one was attached (None otherwise).
    #: Excluded from comparison/repr: tracing never changes the numbers.
    trace: Optional[object] = dataclasses.field(default=None, compare=False, repr=False)
    #: The run's MetricsHub when one was armed (None otherwise).
    #: Excluded from comparison/repr for the same reason as ``trace``.
    metrics: Optional[object] = dataclasses.field(default=None, compare=False, repr=False)

    @property
    def throughput(self) -> float:
        """Committed transactions per million cycles (Figure 4's metric)."""
        if self.cycles <= 0:
            return 0.0
        return self.commits * 1_000_000 / self.cycles

    @property
    def abort_ratio(self) -> float:
        total = self.commits + self.aborts
        return self.aborts / total if total else 0.0


class _Slot:
    """Book-keeping for one thread's generator."""

    __slots__ = ("thread", "gen", "pending_value", "pending_exc", "slice_start", "done")

    def __init__(self, thread: TxThread):
        self.thread = thread
        self.gen = thread.run()
        self.pending_value = None
        self.pending_exc: Optional[BaseException] = None
        self.slice_start = 0
        self.done = False


class Scheduler:
    """Drives a set of TxThreads over the machine's processors."""

    def __init__(
        self,
        machine: FlexTMMachine,
        threads: List[TxThread],
        quantum: Optional[int] = None,
        processors: Optional[List[int]] = None,
        watchdog=None,
        director=None,
    ):
        if not threads:
            raise SchedulerError("no threads to run")
        self.machine = machine
        self.slots = [_Slot(thread) for thread in threads]
        self.quantum = quantum
        self.watchdog = watchdog
        #: Scripted-schedule controller (None = default clock policy).
        self.director = director
        if watchdog is not None:
            watchdog.attach(machine, threads[0].backend)
        available = processors if processors is not None else list(range(machine.params.num_processors))
        if not available:
            raise SchedulerError("no processors available")
        self._procs = available
        self._running: Dict[int, _Slot] = {}
        self._ready: collections.deque = collections.deque()
        #: thread_id -> slot, descheduled by a director and *not* in the
        #: ready queue: only an explicit place()/release_parked() (or
        #: end-of-script cleanup) makes a parked thread runnable again.
        self._parked: Dict[int, _Slot] = {}
        for slot in self.slots:
            if len(self._running) < len(available):
                proc = available[len(self._running)]
                slot.thread.processor = proc
                slot.slice_start = 0
                self._running[proc] = slot
            else:
                self._ready.append(slot)
        if len(self.slots) > len(available) and self.quantum is None:
            self.quantum = machine.params.quantum_cycles

    # ---------------------------------------------------------------- running

    def run(self, cycle_limit: int) -> RunResult:
        """Simulate until every thread finishes or passes the limit."""
        if cycle_limit <= 0:
            raise SchedulerError("cycle_limit must be positive")
        invariants = self.machine.invariants
        resilience = self.machine.resilience
        metrics = self.machine.metrics
        director = self.director
        steps = 0
        while True:
            if director is not None:
                proc = director.pick(self, cycle_limit)
            else:
                proc = self._pick_processor(cycle_limit)
            if proc is None:
                break
            self._step(proc, cycle_limit)
            steps += 1
            if self.watchdog is not None:
                self.watchdog.observe(self)
            if resilience is not None:
                resilience.on_step(self)
            if metrics is not None:
                metrics.on_step(self)
            if invariants is not None and steps % invariants.check_interval == 0:
                invariants.check_machine(self.machine)
        if invariants is not None:
            invariants.check_machine(self.machine)
        return self._result(cycle_limit)

    def _pick_processor(self, cycle_limit: int) -> Optional[int]:
        """Least-advanced processor still under the limit with work."""
        best, best_now = None, None
        for proc, slot in self._running.items():
            if slot.done:
                continue
            now = self.machine.processors[proc].clock.now
            if now >= cycle_limit:
                continue
            if best_now is None or now < best_now or (now == best_now and proc < best):
                best, best_now = proc, now
        return best

    def _step(self, proc: int, cycle_limit: int) -> None:
        slot = self._running[proc]
        clock = self.machine.processors[proc].clock
        chaos = self.machine.chaos
        resilience = self.machine.resilience
        # The serial-irrevocable holder is pinned: neither chaos storms
        # nor quantum expiry may deschedule it (a migration would abort
        # it and void the forward-progress guarantee).  The chaos dice
        # still roll so the injection streams stay aligned.  A schedule
        # director can pin threads the same way (the "pin" directive).
        pinned = resilience is not None and resilience.pinned(slot.thread)
        if not pinned and self.director is not None:
            pinned = self.director.pins(slot.thread)
        if chaos is not None and chaos.enabled:
            if chaos.spurious_alert():
                self.machine.processors[proc].alerts.raise_alert(-1, "spurious")
                clock.advance(SPURIOUS_ALERT_CYCLES)
            if chaos.forced_preempt() and not pinned:
                # Context-switch storm: preempt regardless of quantum.
                self._preempt(proc, slot)
                return
        if (
            self.quantum is not None
            and self._ready
            and not pinned
            and clock.now - slot.slice_start >= self.quantum
        ):
            self._preempt(proc, slot)
            return
        thread = slot.thread
        if (
            slot.pending_exc is None
            and thread.in_transaction
            and thread.backend.check_aborted(thread)
        ):
            slot.pending_exc = self._abort_exception(thread, "status word changed")
        try:
            if slot.pending_exc is not None:
                exc, slot.pending_exc = slot.pending_exc, None
                op = slot.gen.throw(exc)
            else:
                op = slot.gen.send(slot.pending_value)
        except StopIteration:
            self._retire(proc, slot)
            return
        slot.pending_value = self._execute(proc, slot, op)

    def _abort_exception(self, thread, cause: str) -> TransactionAborted:
        """Build a TransactionAborted carrying descriptor attribution.

        Descriptor-less threads (STM backends raise their own aborts;
        the OS path has nothing to attribute) report ``by=-1`` with an
        empty kind.  A thread that *does* have a hardware descriptor is
        expected to carry staged wound attribution by the time its
        abort is delivered; under strict invariants a missing kind is a
        diagnosable attribution loss, not a silent ``kind=""`` entry in
        the abort taxonomy.
        """
        descriptor = thread.descriptor
        if descriptor is None:
            # Descriptor-less backends may still carry attribution in
            # software (the htmbe backend dooms attempts with a wound
            # kind); consult the optional hook before giving up.
            hook = getattr(
                getattr(thread, "backend", None), "abort_attribution", None
            )
            attribution = None if hook is None else hook(thread)
            if attribution is not None:
                by, kind = attribution
                return TransactionAborted(cause, by=by, conflict=kind)
            return TransactionAborted(cause, by=-1, conflict="")
        by = descriptor.wounded_by
        kind = descriptor.wound_kind
        if not kind:
            invariants = self.machine.invariants
            if invariants is not None and invariants.strict:
                raise InvariantViolation(
                    "wound-attribution",
                    f"thread {thread.thread_id} unwound ({cause}) with a "
                    f"descriptor carrying no wound attribution "
                    f"(wounded_by={by})",
                )
        return TransactionAborted(cause, by=by, conflict=kind)

    # -------------------------------------------------------------- op engine

    def _execute(self, proc: int, slot: _Slot, op) -> Optional[MemoryOpResult]:
        machine = self.machine
        kind = op[0]
        clock = machine.processors[proc].clock
        if kind == "work":
            clock.advance(max(1, op[1]))
            return None
        if kind == "tload":
            result = machine.tload(proc, op[1])
        elif kind == "tstore":
            result = machine.tstore(proc, op[1], op[2])
        elif kind == "load":
            result = machine.load(proc, op[1])
        elif kind == "store":
            result = machine.store(proc, op[1], op[2])
        elif kind == "cas":
            result = machine.cas(proc, op[1], op[2], op[3])
        elif kind == "cas_commit":
            result = machine.cas_commit(proc)
        elif kind == "aload":
            result = machine.aload(proc, op[1])
        elif kind == "yield_cpu":
            self._voluntary_yield(proc, slot)
            return None
        else:
            raise SchedulerError(f"unknown op {op!r}")
        clock.advance(max(1, result.cycles))
        return result

    # ------------------------------------------------------- context switching

    def _switch_out(self, proc: int, slot: _Slot, counter: str) -> None:
        """Spill a running thread's state (trap + suspend + OS cost).

        The caller emits the scheduling event (the tracer-event
        registry wants literal kinds at emit sites) and decides where
        the slot goes next (ready queue, parked set); this helper only
        performs the switch-out itself, so quantum preemption,
        voluntary yields, and scripted parks share one timing model.
        """
        thread = slot.thread
        thread.saved_ctx = thread.backend.suspend(thread)
        self.machine.processors[proc].clock.advance(SWITCH_OUT_CYCLES)
        self.machine.stats.counter(counter).increment()
        thread.processor = None

    def _preempt(self, proc: int, slot: _Slot) -> None:
        """Quantum expiry: switch the running thread out (Section 5)."""
        tracer = self.machine.tracer
        now = self.machine.processors[proc].clock.now
        if tracer.enabled:
            tracer.sched(proc, now, "preempt", slot.thread.thread_id)
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(proc, now, "preempt")
        self._switch_out(proc, slot, "ctxsw.switches")
        self._ready.append(slot)
        self._dispatch(proc)

    def _voluntary_yield(self, proc: int, slot: _Slot) -> None:
        """yield_cpu op: give the core away if anyone is waiting."""
        if not self._ready:
            self.machine.processors[proc].clock.advance(1)
            return
        tracer = self.machine.tracer
        now = self.machine.processors[proc].clock.now
        if tracer.enabled:
            tracer.sched(proc, now, "yield", slot.thread.thread_id)
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(proc, now, "yield")
        self._switch_out(proc, slot, "ctxsw.yields")
        self._ready.append(slot)
        self._dispatch(proc)

    def _install(self, proc: int, slot: _Slot) -> None:
        """Resume one descheduled thread on a free processor."""
        thread = slot.thread
        thread.processor = proc
        clock = self.machine.processors[proc].clock
        clock.advance(SWITCH_IN_CYCLES)
        status = thread.backend.resume(thread, proc, thread.saved_ctx)
        thread.saved_ctx = None
        if status == "aborted":
            slot.pending_exc = self._abort_exception(thread, "aborted while descheduled")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, clock.now, "dispatch", thread.thread_id, status=status or ""
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(proc, clock.now, "dispatch")
        slot.slice_start = clock.now
        self._running[proc] = slot

    def _dispatch(self, proc: int) -> None:
        """Give a free processor to the next ready thread."""
        if not self._ready:
            self._running.pop(proc, None)
            return
        slot = self._ready.popleft()
        self._install(proc, slot)

    # ------------------------------------------------- director control surface

    def slot_of(self, thread_id: int) -> Optional[_Slot]:
        """The slot for one thread id (None for an unknown id)."""
        for slot in self.slots:
            if slot.thread.thread_id == thread_id:
                return slot
        return None

    def processor_of(self, thread_id: int) -> Optional[int]:
        """The processor a thread currently occupies (None if not running)."""
        for proc, slot in self._running.items():
            if slot.thread.thread_id == thread_id:
                return proc
        return None

    def free_processors(self) -> List[int]:
        """Processors with no installed thread, in stable (sorted) order."""
        return sorted(proc for proc in self._procs if proc not in self._running)

    def park(self, thread_id: int) -> bool:
        """Deschedule a running thread without re-queueing it.

        The thread's state is spilled through the backend's normal
        ``suspend`` path (same OS cost as a quantum preempt) but the
        slot moves to the parked set instead of the ready queue, so
        *only* an explicit :meth:`place` or :meth:`release_parked`
        makes it runnable again — exact-interleaving control.  Returns
        False when the thread is not currently running.
        """
        proc = self.processor_of(thread_id)
        if proc is None:
            return False
        slot = self._running.pop(proc)
        tracer = self.machine.tracer
        now = self.machine.processors[proc].clock.now
        if tracer.enabled:
            tracer.sched(proc, now, "preempt", slot.thread.thread_id)
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(proc, now, "preempt")
        self._switch_out(proc, slot, "ctxsw.switches")
        self._parked[thread_id] = slot
        return True

    def place(self, thread_id: int, proc: Optional[int] = None) -> bool:
        """Install a parked (or still-queued) thread on a free processor.

        ``proc=None`` picks the lowest-numbered free processor.
        Resuming on a different processor than the thread suspended on
        follows the backend's migration policy (FlexTM abort-restarts
        the transaction).  Returns False when the thread is already
        running, is done, or no suitable processor is free.
        """
        slot = self._parked.pop(thread_id, None)
        if slot is None:
            for queued in list(self._ready):
                if queued.thread.thread_id == thread_id:
                    self._ready.remove(queued)
                    slot = queued
                    break
        if slot is None or slot.done:
            return False
        free = self.free_processors()
        if proc is None:
            if not free:
                self._parked[thread_id] = slot
                return False
            proc = free[0]
        elif proc not in free:
            self._parked[thread_id] = slot
            return False
        self._install(proc, slot)
        return True

    def release_parked(self) -> None:
        """Return every parked thread to the ready queue (id order) and
        fill free processors — the end-of-script cleanup that hands
        control back to the default policy."""
        for thread_id in sorted(self._parked):
            self._ready.append(self._parked.pop(thread_id))
        for proc in self.free_processors():
            if not self._ready:
                break
            self._dispatch(proc)

    def _retire(self, proc: int, slot: _Slot) -> None:
        slot.done = True
        slot.thread.processor = None
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, self.machine.processors[proc].clock.now, "retire",
                slot.thread.thread_id,
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(
                proc, self.machine.processors[proc].clock.now, "retire"
            )
        self._running.pop(proc, None)
        if self._ready:
            self._dispatch(proc)

    # ----------------------------------------------------------------- result

    def _result(self, cycle_limit: int) -> RunResult:
        threads = [slot.thread for slot in self.slots]
        commits = sum(thread.commits for thread in threads)
        aborts = sum(thread.aborts for thread in threads)
        nontx = sum(thread.nontx_items for thread in threads)
        aborts_by_kind: Dict[str, int] = {}
        for thread in threads:
            for kind, count in getattr(thread, "abort_kinds", {}).items():
                aborts_by_kind[kind] = aborts_by_kind.get(kind, 0) + count
        elapsed = min(self.machine.max_cycle(), cycle_limit)
        degrees = self.machine.stats.histogram("cst.conflict_degree")
        escalations: Dict[str, int] = {}
        if self.watchdog is not None:
            escalations["watchdog_escalations"] = self.watchdog.escalations
            escalations["watchdog_kills"] = self.watchdog.forced_aborts
        resilience = self.machine.resilience
        if resilience is not None:
            escalations.update(resilience.escalation_counters())
        if threads:
            # Backend-intrinsic ladders (the htmbe fallback policy) report
            # through the same escalations surface, under fallback_* keys
            # so they never collide with the controller's counters.
            hook = getattr(threads[0].backend, "escalation_counters", None)
            if hook is not None:
                escalations.update(hook())
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.finalize([proc.clock.now for proc in self.machine.processors])
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.finalize([proc.clock.now for proc in self.machine.processors])
        return RunResult(
            cycles=elapsed,
            commits=commits,
            aborts=aborts,
            nontx_items=nontx,
            per_thread=[
                {
                    "thread_id": thread.thread_id,
                    "commits": thread.commits,
                    "aborts": thread.aborts,
                    "nontx_items": thread.nontx_items,
                }
                for thread in threads
            ],
            stats=self.machine.stats.snapshot(),
            conflict_degrees=list(degrees._samples),
            aborts_by_kind=dict(sorted(aborts_by_kind.items())),
            escalations=escalations,
            trace=tracer if tracer.enabled else None,
            metrics=metrics,
        )
