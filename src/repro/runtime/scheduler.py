"""The timing-driven multi-core scheduler.

The executor always steps the thread whose processor clock is furthest
behind (ties broken by processor id), so simulated interleavings follow
the relative progress of the cores — the property that makes contention
pathologies reproducible (DESIGN.md §4).

With more threads than processors (or an explicit quantum) the
scheduler context-switches: the OS path spills the running
transaction's hardware state through the backend's ``suspend`` hook,
installs summary signatures, and later resumes (or abort-restarts, on
migration) via ``resume`` — Section 5 of the paper.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional

from repro.core.machine import FlexTMMachine, MemoryOpResult
from repro.errors import SchedulerError, TransactionAborted
from repro.runtime.txthread import TxThread

#: OS cost to switch a thread out / in (trap + register state).
SWITCH_OUT_CYCLES = 400
SWITCH_IN_CYCLES = 400
#: Handler cost of a spurious (chaos-injected) alert: trap in, re-read
#: the TSW, see ACTIVE, return.
SPURIOUS_ALERT_CYCLES = 15


@dataclasses.dataclass
class RunResult:
    """Aggregate outcome of one simulation run."""

    cycles: int
    commits: int
    aborts: int
    nontx_items: int
    per_thread: List[Dict[str, int]]
    stats: Dict[str, int]
    conflict_degrees: List[int]
    #: Abort counts keyed by conflict kind ("R-W", "W-R", "W-W", "SI",
    #: "migration", "watchdog", "irrevocable", "unattributed").
    aborts_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Escalation-ladder counters (watchdog boosts/kills, resilience
    #: rung transitions, irrevocable grants) — empty unless a watchdog
    #: or degradation controller was armed.
    escalations: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: The run's EventTracer when one was attached (None otherwise).
    #: Excluded from comparison/repr: tracing never changes the numbers.
    trace: Optional[object] = dataclasses.field(default=None, compare=False, repr=False)
    #: The run's MetricsHub when one was armed (None otherwise).
    #: Excluded from comparison/repr for the same reason as ``trace``.
    metrics: Optional[object] = dataclasses.field(default=None, compare=False, repr=False)

    @property
    def throughput(self) -> float:
        """Committed transactions per million cycles (Figure 4's metric)."""
        if self.cycles <= 0:
            return 0.0
        return self.commits * 1_000_000 / self.cycles

    @property
    def abort_ratio(self) -> float:
        total = self.commits + self.aborts
        return self.aborts / total if total else 0.0


class _Slot:
    """Book-keeping for one thread's generator."""

    __slots__ = ("thread", "gen", "pending_value", "pending_exc", "slice_start", "done")

    def __init__(self, thread: TxThread):
        self.thread = thread
        self.gen = thread.run()
        self.pending_value = None
        self.pending_exc: Optional[BaseException] = None
        self.slice_start = 0
        self.done = False


class Scheduler:
    """Drives a set of TxThreads over the machine's processors."""

    def __init__(
        self,
        machine: FlexTMMachine,
        threads: List[TxThread],
        quantum: Optional[int] = None,
        processors: Optional[List[int]] = None,
        watchdog=None,
    ):
        if not threads:
            raise SchedulerError("no threads to run")
        self.machine = machine
        self.slots = [_Slot(thread) for thread in threads]
        self.quantum = quantum
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.attach(machine, threads[0].backend)
        available = processors if processors is not None else list(range(machine.params.num_processors))
        if not available:
            raise SchedulerError("no processors available")
        self._procs = available
        self._running: Dict[int, _Slot] = {}
        self._ready: collections.deque = collections.deque()
        for slot in self.slots:
            if len(self._running) < len(available):
                proc = available[len(self._running)]
                slot.thread.processor = proc
                slot.slice_start = 0
                self._running[proc] = slot
            else:
                self._ready.append(slot)
        if len(self.slots) > len(available) and self.quantum is None:
            self.quantum = machine.params.quantum_cycles

    # ---------------------------------------------------------------- running

    def run(self, cycle_limit: int) -> RunResult:
        """Simulate until every thread finishes or passes the limit."""
        if cycle_limit <= 0:
            raise SchedulerError("cycle_limit must be positive")
        invariants = self.machine.invariants
        resilience = self.machine.resilience
        metrics = self.machine.metrics
        steps = 0
        while True:
            proc = self._pick_processor(cycle_limit)
            if proc is None:
                break
            self._step(proc, cycle_limit)
            steps += 1
            if self.watchdog is not None:
                self.watchdog.observe(self)
            if resilience is not None:
                resilience.on_step(self)
            if metrics is not None:
                metrics.on_step(self)
            if invariants is not None and steps % invariants.check_interval == 0:
                invariants.check_machine(self.machine)
        if invariants is not None:
            invariants.check_machine(self.machine)
        return self._result(cycle_limit)

    def _pick_processor(self, cycle_limit: int) -> Optional[int]:
        """Least-advanced processor still under the limit with work."""
        best, best_now = None, None
        for proc, slot in self._running.items():
            if slot.done:
                continue
            now = self.machine.processors[proc].clock.now
            if now >= cycle_limit:
                continue
            if best_now is None or now < best_now or (now == best_now and proc < best):
                best, best_now = proc, now
        return best

    def _step(self, proc: int, cycle_limit: int) -> None:
        slot = self._running[proc]
        clock = self.machine.processors[proc].clock
        chaos = self.machine.chaos
        resilience = self.machine.resilience
        # The serial-irrevocable holder is pinned: neither chaos storms
        # nor quantum expiry may deschedule it (a migration would abort
        # it and void the forward-progress guarantee).  The chaos dice
        # still roll so the injection streams stay aligned.
        pinned = resilience is not None and resilience.pinned(slot.thread)
        if chaos is not None and chaos.enabled:
            if chaos.spurious_alert():
                self.machine.processors[proc].alerts.raise_alert(-1, "spurious")
                clock.advance(SPURIOUS_ALERT_CYCLES)
            if chaos.forced_preempt() and not pinned:
                # Context-switch storm: preempt regardless of quantum.
                self._preempt(proc, slot)
                return
        if (
            self.quantum is not None
            and self._ready
            and not pinned
            and clock.now - slot.slice_start >= self.quantum
        ):
            self._preempt(proc, slot)
            return
        thread = slot.thread
        if (
            slot.pending_exc is None
            and thread.in_transaction
            and thread.backend.check_aborted(thread)
        ):
            slot.pending_exc = self._abort_exception(thread, "status word changed")
        try:
            if slot.pending_exc is not None:
                exc, slot.pending_exc = slot.pending_exc, None
                op = slot.gen.throw(exc)
            else:
                op = slot.gen.send(slot.pending_value)
        except StopIteration:
            self._retire(proc, slot)
            return
        slot.pending_value = self._execute(proc, slot, op)

    @staticmethod
    def _abort_exception(thread, cause: str) -> TransactionAborted:
        """Build a TransactionAborted carrying descriptor attribution."""
        descriptor = thread.descriptor
        by = getattr(descriptor, "wounded_by", -1) if descriptor is not None else -1
        kind = getattr(descriptor, "wound_kind", "") if descriptor is not None else ""
        return TransactionAborted(cause, by=by, conflict=kind)

    # -------------------------------------------------------------- op engine

    def _execute(self, proc: int, slot: _Slot, op) -> Optional[MemoryOpResult]:
        machine = self.machine
        kind = op[0]
        clock = machine.processors[proc].clock
        if kind == "work":
            clock.advance(max(1, op[1]))
            return None
        if kind == "tload":
            result = machine.tload(proc, op[1])
        elif kind == "tstore":
            result = machine.tstore(proc, op[1], op[2])
        elif kind == "load":
            result = machine.load(proc, op[1])
        elif kind == "store":
            result = machine.store(proc, op[1], op[2])
        elif kind == "cas":
            result = machine.cas(proc, op[1], op[2], op[3])
        elif kind == "cas_commit":
            result = machine.cas_commit(proc)
        elif kind == "aload":
            result = machine.aload(proc, op[1])
        elif kind == "yield_cpu":
            self._voluntary_yield(proc, slot)
            return None
        else:
            raise SchedulerError(f"unknown op {op!r}")
        clock.advance(max(1, result.cycles))
        return result

    # ------------------------------------------------------- context switching

    def _preempt(self, proc: int, slot: _Slot) -> None:
        """Quantum expiry: switch the running thread out (Section 5)."""
        thread = slot.thread
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, self.machine.processors[proc].clock.now, "preempt",
                thread.thread_id,
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(
                proc, self.machine.processors[proc].clock.now, "preempt"
            )
        thread.saved_ctx = thread.backend.suspend(thread)
        self.machine.processors[proc].clock.advance(SWITCH_OUT_CYCLES)
        self.machine.stats.counter("ctxsw.switches").increment()
        thread.processor = None
        self._ready.append(slot)
        self._dispatch(proc)

    def _voluntary_yield(self, proc: int, slot: _Slot) -> None:
        """yield_cpu op: give the core away if anyone is waiting."""
        if not self._ready:
            self.machine.processors[proc].clock.advance(1)
            return
        thread = slot.thread
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, self.machine.processors[proc].clock.now, "yield",
                thread.thread_id,
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(
                proc, self.machine.processors[proc].clock.now, "yield"
            )
        thread.saved_ctx = thread.backend.suspend(thread)
        self.machine.processors[proc].clock.advance(SWITCH_OUT_CYCLES)
        self.machine.stats.counter("ctxsw.yields").increment()
        thread.processor = None
        self._ready.append(slot)
        self._dispatch(proc)

    def _dispatch(self, proc: int) -> None:
        """Give a free processor to the next ready thread."""
        if not self._ready:
            self._running.pop(proc, None)
            return
        slot = self._ready.popleft()
        thread = slot.thread
        thread.processor = proc
        clock = self.machine.processors[proc].clock
        clock.advance(SWITCH_IN_CYCLES)
        status = thread.backend.resume(thread, proc, thread.saved_ctx)
        thread.saved_ctx = None
        if status == "aborted":
            slot.pending_exc = self._abort_exception(thread, "aborted while descheduled")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, clock.now, "dispatch", thread.thread_id, status=status or ""
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(proc, clock.now, "dispatch")
        slot.slice_start = clock.now
        self._running[proc] = slot

    def _retire(self, proc: int, slot: _Slot) -> None:
        slot.done = True
        slot.thread.processor = None
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sched(
                proc, self.machine.processors[proc].clock.now, "retire",
                slot.thread.thread_id,
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_sched(
                proc, self.machine.processors[proc].clock.now, "retire"
            )
        self._running.pop(proc, None)
        if self._ready:
            self._dispatch(proc)

    # ----------------------------------------------------------------- result

    def _result(self, cycle_limit: int) -> RunResult:
        threads = [slot.thread for slot in self.slots]
        commits = sum(thread.commits for thread in threads)
        aborts = sum(thread.aborts for thread in threads)
        nontx = sum(thread.nontx_items for thread in threads)
        aborts_by_kind: Dict[str, int] = {}
        for thread in threads:
            for kind, count in getattr(thread, "abort_kinds", {}).items():
                aborts_by_kind[kind] = aborts_by_kind.get(kind, 0) + count
        elapsed = min(self.machine.max_cycle(), cycle_limit)
        degrees = self.machine.stats.histogram("cst.conflict_degree")
        escalations: Dict[str, int] = {}
        if self.watchdog is not None:
            escalations["watchdog_escalations"] = self.watchdog.escalations
            escalations["watchdog_kills"] = self.watchdog.forced_aborts
        resilience = self.machine.resilience
        if resilience is not None:
            escalations.update(resilience.escalation_counters())
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.finalize([proc.clock.now for proc in self.machine.processors])
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.finalize([proc.clock.now for proc in self.machine.processors])
        return RunResult(
            cycles=elapsed,
            commits=commits,
            aborts=aborts,
            nontx_items=nontx,
            per_thread=[
                {
                    "thread_id": thread.thread_id,
                    "commits": thread.commits,
                    "aborts": thread.aborts,
                    "nontx_items": thread.nontx_items,
                }
                for thread in threads
            ],
            stats=self.machine.stats.snapshot(),
            conflict_degrees=list(degrees._samples),
            aborts_by_kind=dict(sorted(aborts_by_kind.items())),
            escalations=escalations,
            trace=tracer if tracer.enabled else None,
            metrics=metrics,
        )
