"""Transactional threads: the retry loop around workload bodies.

A :class:`TxThread` owns one stream of work items produced by a
workload.  Each *transactional* item is a generator function taking a
:class:`~repro.runtime.api.TxContext`; the thread wraps it in
begin/commit and retries on :class:`~repro.errors.TransactionAborted`
(delivered by the scheduler's AOU poll or raised by the backend).
*Non-transactional* items run bare — they are how compute-bound
background work (the Prime workload of Figure 5e/f) and CGL critical
sections express themselves.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator, Optional, Tuple  # noqa: F401

from repro.errors import TransactionAborted
from repro.obs.tracer import NULL_TRACER
from repro.runtime.api import TMBackend, TxContext


@dataclasses.dataclass
class WorkItem:
    """One unit of thread work.

    Attributes:
        body: generator function; receives a TxContext when
            ``transactional`` else an opaque op emitter (the context is
            still passed for its ``work`` helper, but reads/writes on it
            would be transactional — non-tx bodies should yield raw
            ``("load", ...)`` / ``("store", ...)`` / ``("work", n)`` ops).
        transactional: run under begin/commit with retry when True.
    """

    body: Callable
    transactional: bool = True


class TxThread:
    """One simulated thread of execution."""

    def __init__(
        self,
        thread_id: int,
        backend: TMBackend,
        items: Iterable[WorkItem],
        yield_on_abort: bool = False,
        abort_work: Optional[Callable] = None,
    ):
        self.thread_id = thread_id
        self.backend = backend
        self._items = iter(items)
        #: Deschedule (yield the CPU) after every abort.
        self.yield_on_abort = yield_on_abort
        #: User-level schedule of Figure 5(e)/(f): after every abort the
        #: thread "yields to compute-intensive work" — a generator
        #: factory (taking the TxContext) run once per abort, counted as
        #: a non-transactional item.
        self.abort_work = abort_work
        #: Processor currently running this thread (set by scheduler).
        self.processor: Optional[int] = None
        #: FlexTM descriptor (created lazily by the backend).
        self.descriptor = None
        self.in_transaction = False
        self.commits = 0
        self.aborts = 0
        self.nontx_items = 0
        #: Abort counts keyed by conflict kind (cause fidelity).
        self.abort_kinds = {}
        #: Saved hardware context while descheduled mid-transaction.
        self.saved_ctx = None

    def run(self) -> Iterator[Tuple]:
        """Master generator: the scheduler drives this one op at a time."""
        ctx = TxContext(self.backend, self)
        for item in self._items:
            if not item.transactional:
                yield from item.body(ctx)
                self.nontx_items += 1
                continue
            yield from self._run_transaction(ctx, item.body)

    def _run_transaction(self, ctx: TxContext, body: Callable) -> Iterator[Tuple]:
        aborts_in_a_row = 0
        incarnation = 0
        resilience = self._resilience()
        while True:
            if resilience is not None:
                # Degradation-ladder admission: spins while another
                # thread runs irrevocably; acquires the token when this
                # thread's own rung demands serial mode.
                yield from resilience.admission(self)
            try:
                self.in_transaction = True
                incarnation += 1
                if self.descriptor is not None:
                    # Fresh attempt: clear stale wound attribution.
                    self.descriptor.wounded_by = -1
                    self.descriptor.wound_kind = ""
                tracer = self._tracer()
                if tracer.enabled:
                    tracer.tx_begin(
                        self.processor, self.thread_id, self._now(),
                        self.backend.name, incarnation,
                    )
                metrics = self._metrics()
                if metrics is not None:
                    metrics.on_begin(
                        self.processor if self.processor is not None else -1,
                        self.thread_id, self._now(),
                    )
                probes = self._probes()
                if probes is not None:
                    probes.on_begin(self.thread_id)
                if resilience is not None:
                    resilience.on_attempt(self, self._now())
                yield from self.backend.begin(self)
                yield from body(ctx)
                yield from self.backend.commit(self)
                self.in_transaction = False
                self.commits += 1
                if resilience is not None:
                    resilience.on_commit(self, self._now())
                if tracer.enabled:
                    tracer.tx_commit(self.processor, self.thread_id, self._now())
                if metrics is not None:
                    metrics.on_commit(
                        self.processor if self.processor is not None else -1,
                        self.thread_id, self._now(),
                    )
                probes = self._probes()
                if probes is not None:
                    probes.on_commit(self.thread_id)
                return
            except TransactionAborted as abort:
                self.in_transaction = False
                self.aborts += 1
                aborts_in_a_row += 1
                conflict = getattr(abort, "conflict", "")
                by = getattr(abort, "by", -1)
                if self.descriptor is not None:
                    if not conflict:
                        conflict = getattr(self.descriptor, "wound_kind", "")
                    if by < 0:
                        by = getattr(self.descriptor, "wounded_by", -1)
                key = conflict or "unattributed"
                self.abort_kinds[key] = self.abort_kinds.get(key, 0) + 1
                if resilience is not None:
                    resilience.on_abort(self, self._now())
                yield from self.backend.on_abort(self)
                tracer = self._tracer()
                if tracer.enabled:
                    tracer.tx_abort(
                        self.processor, self.thread_id, self._now(),
                        cause=str(abort) or "aborted",
                        by=by,
                        conflict=conflict,
                    )
                metrics = self._metrics()
                if metrics is not None:
                    metrics.on_abort(
                        self.processor if self.processor is not None else -1,
                        self.thread_id, self._now(), by, key,
                    )
                probes = self._probes()
                if probes is not None:
                    probes.on_abort(self.thread_id)
                if self.abort_work is not None:
                    yield from self.abort_work(ctx)
                    self.nontx_items += 1
                if self.yield_on_abort:
                    yield ("yield_cpu",)
                backoff = self._retry_backoff(aborts_in_a_row)
                if backoff:
                    yield ("work", backoff)
                    if tracer.enabled and self.processor is not None:
                        tracer.stall(self.processor, self._now(), backoff)
                    if metrics is not None and self.processor is not None:
                        metrics.on_stall(self.processor, self._now(), backoff)

    def _tracer(self):
        machine = getattr(self.backend, "machine", None)
        return machine.tracer if machine is not None else NULL_TRACER

    def _resilience(self):
        machine = getattr(self.backend, "machine", None)
        return machine.resilience if machine is not None else None

    def _metrics(self):
        machine = getattr(self.backend, "machine", None)
        return machine.metrics if machine is not None else None

    def _probes(self):
        machine = getattr(self.backend, "machine", None)
        return machine.probes if machine is not None else None

    def _now(self) -> int:
        """The owning processor's current cycle (0 when descheduled)."""
        machine = getattr(self.backend, "machine", None)
        if machine is None or self.processor is None:
            return 0
        return machine.processors[self.processor].clock.now

    def _retry_backoff(self, aborts_in_a_row: int) -> int:
        backoff_fn = getattr(self.backend, "retry_backoff", None)
        if backoff_fn is None:
            return min(1 << min(aborts_in_a_row, 8), 256)
        return backoff_fn(aborts_in_a_row)

    def __repr__(self) -> str:
        return (
            f"TxThread(id={self.thread_id}, commits={self.commits}, "
            f"aborts={self.aborts})"
        )
