"""The transactional programming model.

Workload code is written once against :class:`TxContext` and runs
unchanged on every TM system (FlexTM, RTM-F, RSTM, TL-2, CGL).  Bodies
are *generator functions*: every memory operation is a ``yield from``
into the context, which lets the scheduler interleave simulated threads
at single-operation granularity, deterministically.

A transaction body looks like::

    def deposit(tx, account_addr, amount):
        balance = yield from tx.read(account_addr)
        yield from tx.write(account_addr, balance + amount)

The backend decides what a logical ``read``/``write`` costs: FlexTM
issues one TLoad/TStore; an STM issues the same data access plus its
metadata bookkeeping operations.

The low-level operations that generators ultimately yield are tuples
executed by the scheduler against the machine:

``("tload", addr)`` / ``("tstore", addr, value)``
``("load", addr)`` / ``("store", addr, value)``
``("cas", addr, expected, new)`` / ``("cas_commit",)``
``("aload", addr)`` / ``("work", cycles)``
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import IllegalOperation


def work(cycles: int) -> Iterator[Tuple]:
    """Yield a pure-compute op (charged at IPC=1)."""
    yield ("work", cycles)


class TMBackend:
    """Interface every TM system implements.

    All methods are generator functions yielding low-level ops; the
    value a generator *returns* (via ``return``) is the result of the
    logical operation.  ``commit`` must raise
    :class:`~repro.errors.TransactionAborted` when the transaction
    loses; the thread driver handles the retry.
    """

    name = "abstract"

    def begin(self, thread) -> Iterator[Tuple]:
        raise NotImplementedError
        yield  # pragma: no cover

    def read(self, thread, address: int) -> Iterator[Tuple]:
        raise NotImplementedError
        yield  # pragma: no cover

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        raise NotImplementedError
        yield  # pragma: no cover

    def commit(self, thread) -> Iterator[Tuple]:
        raise NotImplementedError
        yield  # pragma: no cover

    def on_abort(self, thread) -> Iterator[Tuple]:
        """Cleanup after an abort (default: nothing)."""
        return
        yield  # pragma: no cover

    def check_aborted(self, thread) -> bool:
        """Polled by the scheduler between ops; True -> unwind thread."""
        return False

    def suspend(self, thread):
        """Context-switch hook (systems without one need no action)."""
        return None

    def resume(self, thread, processor: int, saved) -> None:
        return None


class TxContext:
    """What a transaction body sees: reads, writes, and scratch compute."""

    def __init__(self, backend: TMBackend, thread):
        self._backend = backend
        self._thread = thread
        #: The machine, for the opt-in probe layer (None when the
        #: backend is not machine-backed, e.g. bare test doubles).
        self._machine = getattr(backend, "machine", None)

    def read(self, address: int) -> Iterator[Tuple]:
        """Transactional read of one word; returns its value.

        This is the universal observation chokepoint for the opacity
        probes: every backend's logical read returns its value here, so
        an armed ``machine.probes`` sees exactly what the transaction
        saw — including values a zombie reads before its abort lands.
        """
        value = yield from self._backend.read(self._thread, address)
        machine = self._machine
        if machine is not None and machine.probes is not None:
            machine.probes.on_read(self._thread.thread_id, address, value)
        return value

    def write(self, address: int, value: int) -> Iterator[Tuple]:
        """Transactional write of one word."""
        yield from self._backend.write(self._thread, address, value)
        machine = self._machine
        if machine is not None and machine.probes is not None:
            machine.probes.on_write(self._thread.thread_id, address, value)

    def work(self, cycles: int) -> Iterator[Tuple]:
        """Non-memory computation inside the transaction."""
        if cycles < 0:
            raise IllegalOperation("work cycles must be >= 0")
        if cycles:
            yield ("work", cycles)

    # -- transactional pause (Section 3.5) -------------------------------------

    def paused_read(self, address: int) -> Iterator[Tuple]:
        """Ordinary (non-transactional) load inside a transaction.

        The 'special instruction' escape of Section 3.5: bypasses the
        TM backend entirely — no signature update, no buffering, no
        conflict tracking.  Useful for open-nesting-style side effects,
        software metadata, and cheap thread-private reads.
        """
        result = yield ("load", address)
        return result.value

    def paused_write(self, address: int, value: int) -> Iterator[Tuple]:
        """Ordinary store inside a transaction: visible immediately and
        *not* rolled back if the surrounding transaction aborts."""
        yield ("store", address, value)

    @property
    def thread(self):
        return self._thread
