"""Contention (conflict) managers.

The paper uses **Polka** (Scherer & Scott) for every system evaluated:
a requestor backs off a bounded number of times — proportional to the
*karma* gap between itself and its enemy, with exponentially growing
intervals — and then aborts the enemy.  Karma is the number of objects
(here: accesses) the transaction has opened.

Managers are pure decision functions: the backend asks what to do about
one conflict attempt and executes the outcome itself, so managers stay
trivially portable across TM systems (the policy/mechanism split the
paper advocates).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.sim.rng import DeterministicRng


class Decision(enum.Enum):
    """What the manager wants done about an open conflict."""

    WAIT = "wait"
    ABORT_ENEMY = "abort-enemy"
    ABORT_SELF = "abort-self"


@dataclasses.dataclass(frozen=True)
class Ruling:
    """A decision plus the back-off to apply when it is WAIT."""

    decision: Decision
    backoff_cycles: int = 0


class ConflictManager:
    """Base class: subclasses override :meth:`decide`."""

    name = "base"

    def __init__(self, rng: DeterministicRng = None):
        self.rng = rng or DeterministicRng(0xC0)
        #: Watchdog/ladder escalation multiplier for back-off windows.
        #: Stays 1 unless :meth:`escalate` is called, so the RNG stream
        #: (and every decision) is bit-identical without an escalator.
        self.boost = 1
        #: How many times escalate() fired (telemetry; no RNG draws).
        self.escalations = 0

    def decide(self, attempt: int, my_karma: int, enemy_karma: int) -> Ruling:
        raise NotImplementedError

    def escalate(self, growth: int = 2, max_boost: int = 8) -> int:
        """Escalation hook: bounded multiplicative back-off growth.

        Consumes no random numbers, so callers (livelock watchdog, the
        degradation ladder) never perturb the golden decision streams.
        """
        self.escalations += 1
        self.boost = min(self.boost * max(1, growth), max(1, max_boost))
        return self.boost

    def reset_escalation(self) -> None:
        self.boost = 1

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        """Back-off applied before restarting an aborted transaction."""
        window = min(aborts_in_a_row, 8)
        return self.rng.randint(0, (1 << window) * 16 * self.boost)


class PolkaManager(ConflictManager):
    """Polka: karma-gap bounded exponential back-off, then abort enemy."""

    name = "Polka"

    def __init__(self, rng: DeterministicRng = None, base_backoff: int = 16, max_attempts: int = 6):
        super().__init__(rng)
        self.base_backoff = base_backoff
        self.max_attempts = max_attempts

    def decide(self, attempt: int, my_karma: int, enemy_karma: int) -> Ruling:
        budget = max(1, enemy_karma - my_karma)
        budget = min(budget, self.max_attempts)
        if attempt < budget:
            window = self.base_backoff << min(attempt, 10)
            return Ruling(Decision.WAIT, self.rng.randint(1, window))
        return Ruling(Decision.ABORT_ENEMY)


class AggressiveManager(ConflictManager):
    """Always abort the enemy immediately (maximum wounding)."""

    name = "Aggressive"

    def decide(self, attempt: int, my_karma: int, enemy_karma: int) -> Ruling:
        return Ruling(Decision.ABORT_ENEMY)


class TimidManager(ConflictManager):
    """Always abort self (the only option LogTM-SE/SigTM hardware has)."""

    name = "Timid"

    def decide(self, attempt: int, my_karma: int, enemy_karma: int) -> Ruling:
        return Ruling(Decision.ABORT_SELF)


class TimestampManager(ConflictManager):
    """Older transaction wins; karma stands in for age here.

    The caller passes start-cycle-derived karma values, so a larger
    karma means an older (higher-priority) transaction.
    """

    name = "Timestamp"

    def __init__(self, rng: DeterministicRng = None, wait_cycles: int = 64, max_attempts: int = 4):
        super().__init__(rng)
        self.wait_cycles = wait_cycles
        self.max_attempts = max_attempts

    def decide(self, attempt: int, my_karma: int, enemy_karma: int) -> Ruling:
        if my_karma >= enemy_karma:
            return Ruling(Decision.ABORT_ENEMY)
        if attempt < self.max_attempts:
            return Ruling(Decision.WAIT, self.rng.randint(1, self.wait_cycles << attempt))
        return Ruling(Decision.ABORT_SELF)
