"""System configuration for the simulated FlexTM chip multiprocessor.

Defaults follow Table 3(a) of the paper: a 16-way CMP with 1.2 GHz
in-order single-issue cores (non-memory IPC = 1), 32 KB 2-way private L1s
with 64-byte blocks and a 32-entry victim buffer, 2048-bit signatures, an
8 MB shared L2 (20-cycle latency), and 250-cycle memory.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level.

    Attributes:
        size_bytes: total capacity of the data array.
        associativity: number of ways per set.
        line_bytes: block size in bytes (shared across the hierarchy).
    """

    size_bytes: int
    associativity: int
    line_bytes: int

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "line_bytes"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ConfigurationError(f"{name} must be a power of two, got {value}")
        if self.size_bytes < self.associativity * self.line_bytes:
            raise ConfigurationError(
                "cache smaller than a single set: "
                f"{self.size_bytes} < {self.associativity} * {self.line_bytes}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / ways)."""
        return self.num_lines // self.associativity


@dataclasses.dataclass(frozen=True)
class SystemParams:
    """Full machine configuration (Table 3a defaults).

    The latencies are in processor cycles and are charged to the
    requesting core per memory operation; non-memory instructions cost
    ``cpu_op_cycles`` each (IPC = 1 in the paper's in-order cores).
    """

    num_processors: int = 16
    l1: CacheGeometry = dataclasses.field(
        default_factory=lambda: CacheGeometry(size_bytes=32 * 1024, associativity=2, line_bytes=64)
    )
    l2: CacheGeometry = dataclasses.field(
        default_factory=lambda: CacheGeometry(size_bytes=8 * 1024 * 1024, associativity=8, line_bytes=64)
    )
    victim_buffer_entries: int = 32
    signature_bits: int = 2048
    signature_hashes: int = 4
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 20
    memory_cycles: int = 250
    remote_l1_cycles: int = 20  # forwarded request to a peer L1 via directory
    cpu_op_cycles: int = 1
    # Overflow table: ways per set in the in-memory table.
    ot_associativity: int = 8
    ot_initial_sets: int = 64
    # Scheduling quantum (cycles) used by the virtualization layer.
    quantum_cycles: int = 1_000_000
    # Best-effort HTM backend (repro.stm.htmbe): hard capacity bounds on
    # the hardware read/write sets, in cache lines.  Crossing either
    # bound aborts the attempt with kind "capacity" and sends it down
    # the software fallback ladder.
    htm_read_lines: int = 16
    htm_write_lines: int = 8

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ConfigurationError("num_processors must be >= 1")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size")
        if not _is_power_of_two(self.signature_bits):
            raise ConfigurationError("signature_bits must be a power of two")
        if self.signature_hashes < 1:
            raise ConfigurationError("signature_hashes must be >= 1")
        for name in (
            "l1_hit_cycles",
            "l2_hit_cycles",
            "memory_cycles",
            "remote_l1_cycles",
            "cpu_op_cycles",
            "htm_read_lines",
            "htm_write_lines",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by the whole hierarchy."""
        return self.l1.line_bytes

    @property
    def offset_bits(self) -> int:
        """Number of address bits covered by a cache line."""
        return self.line_bytes.bit_length() - 1


DEFAULT_PARAMS = SystemParams()


def small_test_params(num_processors: int = 4) -> SystemParams:
    """A reduced configuration that keeps unit tests fast.

    Uses a tiny L1 so that eviction/overflow paths are exercised with a
    handful of accesses rather than thousands.
    """
    return SystemParams(
        num_processors=num_processors,
        l1=CacheGeometry(size_bytes=1024, associativity=2, line_bytes=64),
        l2=CacheGeometry(size_bytes=64 * 1024, associativity=8, line_bytes=64),
        victim_buffer_entries=4,
        signature_bits=256,
        signature_hashes=2,
        ot_initial_sets=4,
    )
