"""Paper-style plain-text table rendering for the harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_series(label: str, points: Sequence[tuple]) -> str:
    """Render one figure series as ``label: x=y`` pairs."""
    body = "  ".join(
        f"{x}={y:.2f}" if isinstance(y, float) else f"{x}={y}" for x, y in points
    )
    return f"{label:24s} {body}"
