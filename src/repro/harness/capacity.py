"""Capacity sweep: commit rate vs. working-set size for HTM-BE.

The experiment that quantifies FlexTM's headline claim (unbounded,
decoupled TM) against a limited-HTM straw man: each thread repeatedly
runs a transaction over its own *private* working set of N cache
lines — disjoint across threads, so no conflicts ever fire — and the
sweep grows N across the configured hardware read/write-set bounds
(``params.htm_read_lines`` / ``params.htm_write_lines``).

Below the bounds every transaction commits on the hardware path with
zero aborts.  The first size above the write bound makes every
transaction take exactly one deterministic ``capacity`` abort, after
which the fallback ladder fast-fails the remaining HTM budget and the
software slow path commits — the fallback-rate curve jumps from 0.0
to 1.0 at the bound.  Everything is RNG-free, so a repeated run (or a
re-run under ``--jobs`` elsewhere) is bit-identical: same seed ->
identical fallback counts.

CLI::

    python -m repro.harness capacity [--sizes 2,4,8,12,16,24]
        [--threads 4] [--txns 4] [--read-lines N] [--write-lines N]
        [--json-out FILE]

Exit status is non-zero if determinism or the expected ladder
engagement fails (a capacity abort below the bound, or a hardware
commit above it).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem

REPORT_SCHEMA = "repro.capacity/v1"

DEFAULT_SIZES = (2, 4, 8, 12, 16, 24)
DEFAULT_THREADS = 4
DEFAULT_TXNS = 4
DEFAULT_CYCLE_LIMIT = 50_000_000


def _body(cells: Sequence[int]):
    """Read-modify-write every cell of the private working set."""

    def body(ctx):
        total = 0
        for address in cells:
            value = yield from ctx.read(address)
            total += value
            yield from ctx.write(address, value + 1)
        return total

    return body


def run_capacity_point(
    size: int,
    *,
    threads: int = DEFAULT_THREADS,
    txns: int = DEFAULT_TXNS,
    read_lines: Optional[int] = None,
    write_lines: Optional[int] = None,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    backend_name: str = "HTM-BE",
) -> Dict[str, object]:
    """One sweep point: ``threads`` x ``txns`` transactions of ``size`` lines."""
    from repro.harness.runner import SYSTEMS

    params = small_test_params(threads)
    overrides = {}
    if read_lines is not None:
        overrides["htm_read_lines"] = read_lines
    if write_lines is not None:
        overrides["htm_write_lines"] = write_lines
    if overrides:
        params = dataclasses.replace(params, **overrides)
    machine = FlexTMMachine(params)
    backend = SYSTEMS[backend_name](machine, ConflictMode.EAGER)
    line = params.line_bytes
    tx_threads: List[TxThread] = []
    for thread_id in range(threads):
        cells = [machine.allocate(line, line_aligned=True) for _ in range(size)]
        for cell in cells:
            machine.memory.write(cell, 0)
        items = [WorkItem(_body(cells)) for _ in range(txns)]
        tx_threads.append(TxThread(thread_id, backend, items))
    result = Scheduler(machine, tx_threads).run(cycle_limit=cycle_limit)
    from repro.harness.metrics import commits_by_path, fallback_rate

    escalations = result.escalations
    return {
        "set_size": size,
        "read_capacity": params.htm_read_lines,
        "write_capacity": params.htm_write_lines,
        "cycles": result.cycles,
        "commits": result.commits,
        "aborts": result.aborts,
        "aborts_by_kind": result.aborts_by_kind,
        "commits_by_path": commits_by_path(escalations),
        "fallback_rate": fallback_rate(result.commits, escalations),
        "escalations": escalations,
    }


def run_capacity_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    threads: int = DEFAULT_THREADS,
    txns: int = DEFAULT_TXNS,
    read_lines: Optional[int] = None,
    write_lines: Optional[int] = None,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
) -> List[Dict[str, object]]:
    return [
        run_capacity_point(
            size,
            threads=threads,
            txns=txns,
            read_lines=read_lines,
            write_lines=write_lines,
            cycle_limit=cycle_limit,
        )
        for size in sizes
    ]


def check_ladder(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Cross-check each row against the deterministic ladder contract.

    Working sets are thread-private, so *every* abort must be a
    capacity abort; below both bounds nothing aborts and everything
    commits on hardware, above either bound every transaction falls
    back to software.
    """
    problems = []
    for row in rows:
        size = row["set_size"]
        within = (
            size <= row["read_capacity"] and size <= row["write_capacity"]
        )
        unexpected = {
            kind: count
            for kind, count in row["aborts_by_kind"].items()
            if kind != "capacity"
        }
        if unexpected:
            problems.append(
                f"size {size}: non-capacity aborts on disjoint sets: "
                f"{unexpected}"
            )
        paths = row["commits_by_path"]
        if within:
            if row["aborts"]:
                problems.append(
                    f"size {size}: {row['aborts']} abort(s) below the "
                    f"capacity bound"
                )
            if paths["sw"] or paths["irrevocable"]:
                problems.append(
                    f"size {size}: fallback engaged below the bound: {paths}"
                )
        else:
            if paths["htm"]:
                problems.append(
                    f"size {size}: {paths['htm']} hardware commit(s) above "
                    f"the capacity bound"
                )
            if not row["aborts_by_kind"].get("capacity"):
                problems.append(
                    f"size {size}: no capacity aborts above the bound"
                )
    return problems


def render_capacity(rows: Sequence[Dict[str, object]]) -> str:
    header = (
        f"{'size':>5} {'commits':>8} {'aborts':>7} {'capacity':>9} "
        f"{'htm':>6} {'sw':>6} {'irrev':>6} {'fb_rate':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        paths = row["commits_by_path"]
        lines.append(
            f"{row['set_size']:>5} {row['commits']:>8} {row['aborts']:>7} "
            f"{row['aborts_by_kind'].get('capacity', 0):>9} "
            f"{paths['htm']:>6} {paths['sw']:>6} {paths['irrevocable']:>6} "
            f"{row['fallback_rate']:>8.4f}"
        )
    return "\n".join(lines) + "\n"


def run_capacity_command(argv=None) -> int:
    """``python -m repro.harness capacity`` — the fallback-ladder sweep."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness capacity",
        description="Sweep per-thread working-set size across the HTM-BE "
        "read/write-set capacity bounds and report the fallback-rate "
        "curve; fail if the ladder engages non-deterministically or at "
        "the wrong sizes.",
    )
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                        help="comma-separated working-set sizes in lines")
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS,
                        help="transactional threads (disjoint working sets)")
    parser.add_argument("--txns", type=int, default=DEFAULT_TXNS,
                        help="transactions per thread per point")
    parser.add_argument("--read-lines", type=int, default=None,
                        help="override params.htm_read_lines")
    parser.add_argument("--write-lines", type=int, default=None,
                        help="override params.htm_write_lines")
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLE_LIMIT,
                        help="cycle budget per point")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the JSON sweep report here")
    args = parser.parse_args(argv)

    sizes = tuple(
        int(part) for part in args.sizes.split(",") if part.strip()
    )
    if not sizes:
        raise SystemExit("no sizes selected")
    kwargs = dict(
        threads=args.threads, txns=args.txns, read_lines=args.read_lines,
        write_lines=args.write_lines, cycle_limit=args.cycles,
    )
    rows = run_capacity_sweep(sizes, **kwargs)
    replay = run_capacity_sweep(sizes, **kwargs)
    problems = check_ladder(rows)
    if rows != replay:
        problems.append("sweep is not deterministic: replay differs")
    sys.stdout.write(render_capacity(rows))
    for problem in problems:
        sys.stdout.write(f"FAIL: {problem}\n")
    if args.json_out:
        document = {
            "schema": REPORT_SCHEMA,
            "threads": args.threads,
            "txns": args.txns,
            "ok": not problems,
            "problems": problems,
            "rows": rows,
        }
        with open(args.json_out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if problems else 0
