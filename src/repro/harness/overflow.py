"""The Section 7.3 overflow study (E7).

The paper extended the L1 with an *unbounded victim buffer* as an ideal
machine in which TMI lines never spill, and compared redo-logging
(overflow-table) performance against it: ~7% average slowdown, up to
13% in RandomGraph, because restarted transactions queue behind the
committed transaction's copy-back.  Workloads that never overflow show
no slowdown.

To make the small write sets of the benchmarks overflow the same way
they do on the paper's 2-way 32KB L1, the study runs on a reduced L1
(set conflicts, not capacity, cause all the spills — as the paper
observes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.harness.parallel import PointSpec, run_points, unwrap
from repro.harness.runner import ExperimentConfig
from repro.params import CacheGeometry, SystemParams


def overflow_params(num_processors: int = 16) -> SystemParams:
    """A geometry under which benchmark write sets spill by conflict.

    Like the paper's 32KB 2-way L1, overflows here come from *set*
    conflicts, not capacity: the cache is scaled down in proportion to
    our scaled-down working sets, keeping spills occasional (a handful
    of lines per affected transaction) rather than thrashing.
    """
    return SystemParams(
        num_processors=num_processors,
        l1=CacheGeometry(size_bytes=1024, associativity=2, line_bytes=64),
        l2=CacheGeometry(size_bytes=1024 * 1024, associativity=8, line_bytes=64),
        victim_buffer_entries=0,
    )


@dataclasses.dataclass
class OverflowPoint:
    workload: str
    ot_throughput: float
    ideal_throughput: float
    spills: int

    @property
    def slowdown_percent(self) -> float:
        if self.ideal_throughput <= 0:
            return 0.0
        return 100.0 * (1.0 - self.ot_throughput / self.ideal_throughput)


def run_overflow_study(
    workloads: Sequence[str] = ("HashTable", "RBTree", "RandomGraph"),
    threads: int = 2,
    cycle_limit: int = 0,
    seeds: Sequence[int] = (42, 43, 44),
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    jobs: int = 1,
) -> Dict[str, OverflowPoint]:
    """OT vs ideal, averaged over seeds, under lazy management.

    Conflict dynamics differ run to run (wound patterns shift with the
    interleaving), so the modest OT cost only emerges from an average —
    the paper's much longer Simics runs average implicitly.  Lazy mode
    keeps RandomGraph out of the eager livelock that would otherwise
    drown the versioning signal this study isolates.  ``jobs > 1`` fans
    the (workload, seed, OT/ideal) points out across processes.
    """
    params = overflow_params()
    specs: List[PointSpec] = []
    for workload in workloads:
        for seed in seeds:
            base = ExperimentConfig(
                workload=workload,
                system="FlexTM",
                threads=threads,
                mode=ConflictMode.LAZY,
                cycle_limit=cycle_limit,
                seed=seed,
                params=params,
            )
            specs.append(
                PointSpec(
                    config=base,
                    label=f"overflow:{workload}:s{seed}:ot",
                    trace_dir=trace_out,
                    trace_name=f"overflow_{workload}_seed{seed}",
                    metrics_dir=metrics_out,
                    metrics_name=f"overflow_{workload}_seed{seed}",
                )
            )
            specs.append(
                PointSpec(
                    config=dataclasses.replace(base, tmi_to_victim=True),
                    label=f"overflow:{workload}:s{seed}:ideal",
                )
            )
    outcomes = iter(run_points(specs, jobs=jobs))
    results: Dict[str, OverflowPoint] = {}
    for workload in workloads:
        ot_total, ideal_total, spills = 0.0, 0.0, 0
        for seed in seeds:
            with_ot = unwrap(next(outcomes))
            ideal = unwrap(next(outcomes))
            ot_total += with_ot.throughput
            ideal_total += ideal.throughput
            spills += with_ot.stats.get("ot.spills", 0)
        results[workload] = OverflowPoint(
            workload=workload,
            ot_throughput=ot_total / len(seeds),
            ideal_throughput=ideal_total / len(seeds),
            spills=spills,
        )
    return results


def render_overflow(results: Dict[str, OverflowPoint]) -> str:
    from repro.harness.report import format_table

    rows = [
        [
            point.workload,
            f"{point.ot_throughput:.0f}",
            f"{point.ideal_throughput:.0f}",
            point.spills,
            f"{point.slowdown_percent:.1f}%",
        ]
        for point in results.values()
    ]
    return format_table(
        ["Workload", "OT tput", "Ideal tput", "Spills", "Slowdown"],
        rows,
        title="Section 7.3 overflow study (OT vs unbounded victim buffer)",
    )
