"""Degradation-ladder harness: ``python -m repro.harness degrade``.

Crosses the same seeded fault matrix as ``harness chaos`` — every TM
backend under every fault profile, with the chaos engine, invariant
checker, livelock watchdog, and serializability oracle armed — but
additionally installs a :class:`~repro.resilience.degrade.\
ResilienceController` with a deliberately tight ladder, then reports
**forward progress**: commits per ladder rung and time-to-recovery.

Classification per cell:

``clean``
    every transaction committed and the ladder never left HEALTHY.
``recovered``
    every transaction committed and the ladder fired at least once
    (boost, policy flip, signature rotation, or irrevocable grant) —
    the detect->react loop earned its keep.
``diagnosed``
    the run (or its oracle) raised a structured
    :class:`~repro.errors.ReproError` naming the damage.
``wedged``
    the cycle budget expired with transactions outstanding: the ladder
    failed to guarantee progress.  **Test failure.**
``silent-corruption``
    final memory does not replay from the serializability witness.
    **Test failure.**
``crash``
    a non-``ReproError`` escaped.  **Test failure.**

Every cell is deterministic from ``(seed, backend, profile, mode)``:
the controller draws no random numbers and the chaos streams are the
same crc32-mixed ones the chaos harness replays.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
from typing import Dict, List, Sequence

from repro.chaos import ChaosEngine, InvariantChecker, LivelockWatchdog, WatchdogSpec
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import ReproError
from repro.harness.chaos import (
    DEFAULT_CYCLE_LIMIT,
    DEFAULT_THREADS,
    DEFAULT_TXNS,
    FAULT_PROFILES,
    NUM_CELLS,
    _bodies,
    _comma_list,
    profile_spec,
    render_backend_list,
    resolve_backends,
    resolve_profiles,
)
from repro.harness.parallel import effective_jobs
from repro.params import small_test_params
from repro.resilience import DegradeSpec, ResilienceController
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.sim.rng import DeterministicRng
from repro.verify.history import (
    RecordingBackend,
    SerializabilityViolation,
    check_serializable,
)

#: Classifications that fail the harness (exit status 1).
FAILING = ("crash", "wedged", "silent-corruption")

#: The harness ladder is tighter than the library default so every
#: profile actually exercises the rungs on a small workload.
HARNESS_SPEC = DegradeSpec(boost_after=1, eager_after=2, irrevocable_after=3)


@dataclasses.dataclass
class DegradeCell:
    """One (backend, profile) cell of the ladder-armed fault matrix."""

    backend: str
    profile: str
    classification: str
    injected: Dict[str, int]
    commits: int = 0
    aborts: int = 0
    cycles: int = 0
    #: Abort counts keyed by conflict kind (cause fidelity; mirrors the
    #: chaos report so every harness schema carries the same keys).
    aborts_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Commits grouped by the committing thread's ladder rung.
    commits_by_rung: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Escalation counters from RunResult (ladder + watchdog).
    escalations: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Windowed commit/abort series from the metrics hub, keyed by
    #: series name (see repro.obs.metrics.TimeSeries.to_dict).
    series: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Cycles from first escalation to the recovering commit.
    recovery: Dict[str, int] = dataclasses.field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.classification not in FAILING

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _run_degrade_cell(
    backend_name: str,
    profile: str,
    seed: int,
    spec: DegradeSpec,
    mode: ConflictMode,
    threads: int,
    txns: int,
    cycle_limit: int,
) -> DegradeCell:
    """One ladder-armed instrumented run, classified."""
    from repro.harness.runner import SYSTEMS
    from repro.obs.metrics import MetricsHub

    machine = FlexTMMachine(small_test_params(threads))
    hub = MetricsHub()
    machine.set_metrics(hub)
    chaos = ChaosEngine(profile_spec(profile, seed, backend_name), stats=machine.stats)
    machine.set_chaos(chaos)
    machine.set_invariants(InvariantChecker())
    controller = ResilienceController(spec)
    machine.set_resilience(controller)
    backend = RecordingBackend(SYSTEMS[backend_name](machine, mode))
    controller.bind_manager(getattr(backend.inner, "manager", None))
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(NUM_CELLS)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        backend.recorder.note_initial(cell, index)
    unique = itertools.count(1000)
    tx_threads = [
        TxThread(i, backend, _bodies(cells, DeterministicRng(seed * 7919 + i), txns, unique))
        for i in range(threads)
    ]
    expected = threads * txns
    out = DegradeCell(
        backend=backend_name, profile=profile,
        classification="clean", injected={},
    )
    error = ""
    error_kind = ""
    try:
        result = Scheduler(
            machine, tx_threads, watchdog=LivelockWatchdog(WatchdogSpec())
        ).run(cycle_limit=cycle_limit)
        out.commits = result.commits
        out.aborts = result.aborts
        out.cycles = result.cycles
        out.aborts_by_kind = dict(result.aborts_by_kind)
        out.escalations = dict(result.escalations)
        out.series = {
            name: hub.series(name).to_dict()
            for name in ("tx.commits", "tx.aborts")
        }
    except ReproError as exc:
        error, error_kind = f"{type(exc).__name__}: {exc}", "repro"
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        error, error_kind = f"{type(exc).__name__}: {exc}", "crash"
    out.injected = dict(chaos.injected)
    out.commits_by_rung = dict(controller.commits_by_rung)
    recovery = machine.stats.histogram("resilience.recovery_cycles")
    out.recovery = {
        "count": recovery.count,
        "mean": int(recovery.mean),
        "max": recovery.maximum,
    }
    if error_kind == "crash":
        out.classification, out.detail = "crash", error
        return out
    if error_kind == "repro":
        out.classification, out.detail = "diagnosed", error
        return out
    if out.commits < expected:
        out.classification = "wedged"
        out.detail = f"{out.commits}/{expected} commits at cycle budget"
        return out
    try:
        witness = check_serializable(backend.recorder)
    except SerializabilityViolation as exc:
        out.classification = "diagnosed"
        out.detail = f"SerializabilityViolation: {exc}"
        return out
    replay = dict(backend.recorder.initial_values)
    for txn in witness:
        replay.update(txn.writes)
    if not all(machine.memory.read(cell) == replay[cell] for cell in cells):
        out.classification = "silent-corruption"
        out.detail = "final memory diverges from serial witness replay"
        return out
    ladder_keys = (
        "boosts", "policy_flips", "sig_rotations", "irrevocable_grants",
    )
    if any(out.escalations.get(key) for key in ladder_keys):
        out.classification = "recovered"
    return out


def _worker(payload) -> List[DegradeCell]:
    backend_name, profiles, seed, spec, mode, threads, txns, cycle_limit = payload
    return [
        _run_degrade_cell(
            backend_name, profile, seed, spec, mode, threads, txns, cycle_limit
        )
        for profile in profiles
    ]


def run_degrade_matrix(
    backends: Sequence[str],
    profiles: Sequence[str],
    seed: int,
    spec: DegradeSpec = HARNESS_SPEC,
    mode: ConflictMode = ConflictMode.LAZY,
    jobs: int = 1,
    threads: int = DEFAULT_THREADS,
    txns: int = DEFAULT_TXNS,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    progress=None,
) -> List[DegradeCell]:
    """The full ladder-armed matrix; one worker unit per backend."""
    payloads = [
        (name, tuple(profiles), seed, spec, mode, threads, txns, cycle_limit)
        for name in backends
    ]
    jobs = min(max(1, jobs), len(payloads))
    if jobs == 1:
        groups = []
        for payload in payloads:
            groups.append(_worker(payload))
            if progress is not None:
                progress(len(groups), len(payloads))
    else:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            groups = []
            for group in pool.map(_worker, payloads):
                groups.append(group)
                if progress is not None:
                    progress(len(groups), len(payloads))
    return [cell for group in groups for cell in group]


# -- CLI ----------------------------------------------------------------------


def render_degrade_matrix(rows: List[DegradeCell]) -> str:
    """Human-readable report: per-rung commits and recovery latency."""
    lines = []
    header = (
        f"{'backend':<10} {'profile':<10} {'class':<17} {'inj':>5} "
        f"{'commits':>7} {'aborts':>7} {'rungs h/b/e/i':>14} {'recov(max)':>11}  detail"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in rows:
        marker = "" if cell.ok else "  <-- FAIL"
        rungs = "/".join(
            str(cell.commits_by_rung.get(rung, 0))
            for rung in ("healthy", "boosted", "eager", "irrevocable")
        )
        lines.append(
            f"{cell.backend:<10} {cell.profile:<10} {cell.classification:<17} "
            f"{sum(cell.injected.values()):>5} {cell.commits:>7} {cell.aborts:>7} "
            f"{rungs:>14} {cell.recovery.get('max', 0):>11}  "
            f"{cell.detail}{marker}"
        )
    return "\n".join(lines) + "\n"


def run_degrade_command(argv=None) -> int:
    """``python -m repro.harness degrade`` — ladder-armed fault matrix."""
    from repro.harness.runner import SYSTEMS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness degrade",
        description="Run every TM backend under seeded fault injection "
        "with the adaptive degradation ladder armed; report commits per "
        "rung and time-to-recovery; fail on any crash, wedge, or silent "
        "corruption (the forward-progress guarantee).",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for the fault matrix (default 1)")
    parser.add_argument("--backends", default=",".join(SYSTEMS),
                        help="comma-separated backend names (default: all)")
    parser.add_argument("--backend", action="append", default=None,
                        metavar="NAME", dest="backend",
                        help="run a single backend (repeatable; overrides "
                        "--backends)")
    parser.add_argument("--profiles", default=",".join(FAULT_PROFILES),
                        help="comma-separated fault profiles (default: all)")
    parser.add_argument("--profile", action="append", default=None,
                        metavar="NAME", dest="profile",
                        help="run a single fault profile (repeatable; "
                        "overrides --profiles)")
    parser.add_argument("--mode", choices=("eager", "lazy"), default="lazy",
                        help="baseline conflict mode (lazy makes the "
                        "EAGER rung's policy flip observable; default lazy)")
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS,
                        help="transactional threads per run")
    parser.add_argument("--txns", type=int, default=DEFAULT_TXNS,
                        help="transactions per thread per run")
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLE_LIMIT,
                        help="cycle budget per run (wedge detector)")
    parser.add_argument("--boost-after", type=int,
                        default=HARNESS_SPEC.boost_after,
                        help="abort streak before back-off boost")
    parser.add_argument("--eager-after", type=int,
                        default=HARNESS_SPEC.eager_after,
                        help="abort streak before the lazy->eager flip")
    parser.add_argument("--irrevocable-after", type=int,
                        default=HARNESS_SPEC.irrevocable_after,
                        help="abort streak before irrevocability")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU; 1 = serial)")
    parser.add_argument("--report", metavar="FILE",
                        help="write the JSON degrade-matrix report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress on stderr")
    parser.add_argument("--list-backends", action="store_true",
                        help="list the TM backends and exit")
    args = parser.parse_args(argv)

    if args.list_backends:
        sys.stdout.write(render_backend_list())
        return 0

    backends = resolve_backends(args.backend or _comma_list(args.backends))
    profiles = resolve_profiles(args.profile or _comma_list(args.profiles))
    spec = dataclasses.replace(
        HARNESS_SPEC,
        boost_after=args.boost_after,
        eager_after=args.eager_after,
        irrevocable_after=args.irrevocable_after,
    )
    mode = ConflictMode.EAGER if args.mode == "eager" else ConflictMode.LAZY

    jobs = min(effective_jobs(args.jobs), len(backends))
    if not args.quiet:
        sys.stderr.write(
            f"degrade: seed {args.seed}, {len(backends)} backend(s) x "
            f"{len(profiles)} profile(s), mode {args.mode}, {jobs} worker(s)\n"
        )
    progress = None
    if not args.quiet:
        def progress(done, total):
            sys.stderr.write(f"degrade: {done}/{total} backends done\n")

    rows = run_degrade_matrix(
        backends, profiles, args.seed, spec=spec, mode=mode, jobs=jobs,
        threads=args.threads, txns=args.txns, cycle_limit=args.cycles,
        progress=progress,
    )
    sys.stdout.write(render_degrade_matrix(rows))
    counts: Dict[str, int] = {}
    for cell in rows:
        counts[cell.classification] = counts.get(cell.classification, 0) + 1
    failures = [cell for cell in rows if not cell.ok]
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    sys.stdout.write(f"\ndegrade: {len(rows)} cells: {summary}\n")
    if args.report:
        document = {
            "seed": args.seed,
            "backends": list(backends),
            "profiles": list(profiles),
            "mode": args.mode,
            "threads": args.threads,
            "txns": args.txns,
            "cycle_limit": args.cycles,
            "spec": dataclasses.asdict(spec),
            "counts": counts,
            "ok": not failures,
            "cells": [cell.to_json() for cell in rows],
        }
        with open(args.report, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failures:
        sys.stdout.write(
            "degrade: FAIL — "
            + "; ".join(f"{c.backend}/{c.profile}: {c.classification}" for c in failures)
            + "\n"
        )
        return 1
    sys.stdout.write("degrade: forward progress held on every cell "
                     "(no wedges, no corruption)\n")
    return 0
