"""The ``trace`` subcommand: run one traced experiment and inspect it.

Usage::

    python -m repro.harness trace <workload> <system> [--threads N]
        [--cycles N] [--seed N] [--mode eager|lazy]
        [--trace-out FILE.json] [--jsonl-out FILE.jsonl]
        [--sample N] [--no-coherence] [--max-events N]

Attaches an :class:`~repro.obs.tracer.EventTracer` to a single
measurement point, prints the cycle-attribution report, and optionally
exports the event stream as Chrome/Perfetto ``trace_event`` JSON (open
at https://ui.perfetto.dev) and/or JSONL.

The module also provides :func:`write_point_trace`, the shared helper
behind the figure/overflow harnesses' ``--trace-out`` directories.
"""

from __future__ import annotations

import argparse
import os
from typing import Dict

from repro.core.descriptor import ConflictMode
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profiler import CycleProfiler
from repro.obs.report import render_run_report
from repro.obs.tracer import EventTracer
from repro.workloads import WORKLOADS


def _resolve(name: str, table: Dict[str, object], what: str) -> str:
    """Case-insensitive lookup of a workload/system key."""
    lowered = {key.lower(): key for key in table}
    key = lowered.get(name.lower())
    if key is None:
        raise SystemExit(
            f"unknown {what} {name!r}; choose from {', '.join(sorted(table))}"
        )
    return key


def make_tracer(args) -> EventTracer:
    return EventTracer(
        sample_memory=args.sample,
        trace_coherence=not args.no_coherence,
        max_events=args.max_events,
    )


def sweep_tracer() -> EventTracer:
    """Tracer settings for whole-sweep tracing (one file per point).

    Sweeps run dozens of points, so coherence chatter is off and memory
    accesses are sampled sparsely to keep the output browsable.
    """
    return EventTracer(sample_memory=64, trace_coherence=False)


def write_point_trace(
    tracer: EventTracer, directory: str, point_name: str, label: str = ""
) -> str:
    """Write one sweep point's Chrome trace into ``directory``.

    Used by the figure4/figure5/overflow harnesses when run with
    ``--trace-out DIR``; returns the file path written.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{point_name}.json")
    write_chrome_trace(tracer, path, label=label or point_name)
    return path


def run_trace_command(argv=None) -> int:
    # Imported here, not at module top: repro.harness.runner builds the
    # machine layer, and keeping it lazy makes `--help` instant.
    from repro.harness.runner import SYSTEMS, ExperimentConfig, run_experiment

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one traced experiment and print its cycle profile.",
    )
    parser.add_argument("workload", help="workload name (case-insensitive)")
    parser.add_argument("system", help="TM system name (case-insensitive)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=0,
                        help="cycle budget (0 = default / REPRO_CYCLES)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--mode", choices=["eager", "lazy"], default="eager")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write Chrome trace_event JSON here")
    parser.add_argument("--jsonl-out", metavar="FILE",
                        help="write the raw event stream as JSONL here")
    parser.add_argument("--sample", type=int, default=16,
                        help="record every Nth transactional access (default 16)")
    parser.add_argument("--no-coherence", action="store_true",
                        help="skip coherence-protocol events (smaller traces)")
    parser.add_argument("--max-events", type=int, default=None,
                        help="cap recorded events (extras counted as dropped)")
    args = parser.parse_args(argv)
    if args.sample < 1:
        parser.error("--sample must be >= 1")

    workload = _resolve(args.workload, WORKLOADS, "workload")
    system = _resolve(args.system, SYSTEMS, "system")
    mode = ConflictMode.EAGER if args.mode == "eager" else ConflictMode.LAZY
    tracer = make_tracer(args)
    result = run_experiment(
        ExperimentConfig(
            workload=workload,
            system=system,
            threads=args.threads,
            mode=mode,
            cycle_limit=args.cycles,
            seed=args.seed,
            tracer=tracer,
        )
    )

    profile = CycleProfiler(tracer).profile()
    title = f"{workload} / {system} / {args.threads} threads (seed {args.seed})"
    print(render_run_report(profile, result=result, title=title))
    print()
    print(f"events recorded: {len(tracer)}  dropped: {tracer.dropped}")

    if args.trace_out:
        document = to_chrome_trace(tracer, label=title)
        error = validate_chrome_trace(document)
        if error is not None:
            print(f"trace schema error: {error}")
            return 1
        write_chrome_trace(tracer, args.trace_out, label=title)
        print(f"chrome trace written: {args.trace_out} "
              f"(open at https://ui.perfetto.dev)")
    if args.jsonl_out:
        write_jsonl(tracer, args.jsonl_out)
        print(f"jsonl written: {args.jsonl_out}")
    return 0
