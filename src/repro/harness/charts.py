"""Terminal line charts for the figure harnesses.

Renders the regenerated Figure 4/5 series as ASCII plots so the shapes
— who wins, where the crossovers are — are visible at a glance without
leaving the terminal.  Pure text, no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Plot glyphs assigned to series in declaration order.
SERIES_GLYPHS = "o*x+#@%&"


def render_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 56,
    height: int = 16,
    x_label: str = "threads",
    y_label: str = "normalized",
) -> str:
    """Render named (x, y) series as one ASCII chart.

    X positions are mapped by *rank* of the sorted distinct x values
    (thread sweeps are log-spaced: 1, 2, 4, 8, 16), Y linearly from 0
    to the max.
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = sorted({x for points in series.values() for x, _ in points})
    if not xs:
        raise ValueError("series contain no points")
    y_max = max((y for points in series.values() for _, y in points), default=1.0)
    y_max = max(y_max, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    x_position = {
        x: int(round(index * (width - 1) / max(1, len(xs) - 1)))
        for index, x in enumerate(xs)
    }

    def y_row(value: float) -> int:
        fraction = min(1.0, value / y_max)
        return (height - 1) - int(round(fraction * (height - 1)))

    legend: List[str] = []
    for order, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[order % len(SERIES_GLYPHS)]
        legend.append(f"{glyph}={name}")
        ordered = sorted(points)
        # Line segments via simple interpolation between adjacent points.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            col0, col1 = x_position[x0], x_position[x1]
            for col in range(col0, col1 + 1):
                t = (col - col0) / max(1, col1 - col0)
                row = y_row(y0 + t * (y1 - y0))
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in ordered:
            grid[y_row(y)][x_position[x]] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.2f}"
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else ""
        if row_index == height - 1:
            prefix = "0"
        lines.append(f"{prefix:>7s} |" + "".join(row))
    axis = " " * 8 + "+" + "-" * width
    lines.append(axis)
    ticks = [" "] * width
    for x in xs:
        label = str(int(x)) if float(x).is_integer() else f"{x:g}"
        position = min(x_position[x], width - len(label))
        for offset, char in enumerate(label):
            ticks[position + offset] = char
    lines.append(" " * 9 + "".join(ticks) + f"   ({x_label})")
    lines.append(" " * 9 + "  ".join(legend) + f"   [y: {y_label}]")
    return "\n".join(lines)


def chart_figure4(points, workload: str) -> str:
    """Chart one Figure 4 panel from Figure4Point records."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.system, []).append((point.threads, point.normalized))
    return render_chart(series, title=f"Figure 4 — {workload}")


def chart_figure5(points, workload: str) -> str:
    """Chart one Figure 5 policy panel from PolicyPoint records."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.mode, []).append((point.threads, point.normalized))
    return render_chart(series, title=f"Figure 5 — {workload} (eager vs lazy)")
