"""``python -m repro.harness adversary`` — the conformance matrix CLI.

Runs every named adversarial schedule (see
:mod:`repro.adversary.schedules`) against every TM backend with strict
invariants, the opacity probe, and the serializability oracle armed,
then renders a verdict table and (optionally) writes the
``repro.adversary/v1`` JSON report.  The exit status is non-zero on
any ``violates`` verdict — including opacity (zombie snapshot)
violations and aborts on progressiveness schedules.

The matrix is bit-identical across reruns and across ``--jobs`` values
(workers partition by backend, preserving every cell's seed and row
order), so a CI failure replays locally with the same command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Sequence

from repro.adversary.conformance import (
    DEFAULT_CYCLE_LIMIT,
    ScheduleCell,
    run_adversary_matrix,
)
from repro.adversary.schedules import SCHEDULES
from repro.harness.chaos import _comma_list, render_backend_list, resolve_backends
from repro.harness.parallel import effective_jobs

#: Schema tag for the JSON report.
REPORT_SCHEMA = "repro.adversary/v1"


def resolve_schedules(names: Sequence[str]) -> List[str]:
    """Validate schedule names against the catalog (SystemExit on junk)."""
    schedules = []
    for name in names:
        if name not in SCHEDULES:
            raise SystemExit(
                f"unknown schedule {name!r}; choose from {', '.join(SCHEDULES)}"
            )
        schedules.append(name)
    return schedules


def list_schedules() -> str:
    """The ``--list-schedules`` discovery listing."""
    lines = ["named adversarial schedules:"]
    for spec in SCHEDULES.values():
        flavor = "forbid-aborts" if spec.forbid_aborts else "conflict"
        lines.append(f"  {spec.name:<22} [{flavor}] {spec.description}")
        lines.append(f"  {'':<22} -- {spec.citation}")
    return "\n".join(lines) + "\n"


def render_matrix(rows: List[ScheduleCell]) -> str:
    """Human-readable verdict table."""
    lines = []
    header = (
        f"{'backend':<10} {'schedule':<22} {'verdict':<19} "
        f"{'commits':>7} {'aborts':>7} {'zombies':>7}  detail"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in rows:
        marker = "" if cell.ok else "  <-- FAIL"
        lines.append(
            f"{cell.backend:<10} {cell.schedule:<22} {cell.verdict:<19} "
            f"{cell.commits:>7} {cell.aborts:>7} "
            f"{cell.probe.get('zombie_attempts', 0):>7}  {cell.detail}{marker}"
        )
    return "\n".join(lines) + "\n"


def build_report(
    rows: List[ScheduleCell],
    seed: int,
    backends: Sequence[str],
    schedules: Sequence[str],
    cycle_limit: int,
    strict: bool,
) -> Dict[str, object]:
    counts: Dict[str, int] = {}
    for cell in rows:
        counts[cell.verdict] = counts.get(cell.verdict, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "backends": list(backends),
        "schedules": list(schedules),
        "cycle_limit": cycle_limit,
        "strict": strict,
        "counts": counts,
        "ok": all(cell.ok for cell in rows),
        "cells": [cell.to_json() for cell in rows],
    }


def run_adversary_command(argv=None) -> int:
    """``python -m repro.harness adversary`` — run the conformance matrix."""
    from repro.harness.runner import SYSTEMS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness adversary",
        description="Drive every TM backend through the named adversarial "
        "schedules from the TM-theory literature, with strict invariants, "
        "opacity/zombie probes, and the serializability oracle armed; "
        "fail on any conformance violation.",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for the matrix (default 1)")
    parser.add_argument("--backends", default=",".join(SYSTEMS),
                        help="comma-separated backend names (default: all)")
    parser.add_argument("--backend", action="append", default=None,
                        metavar="NAME", dest="backend",
                        help="run a single backend (repeatable; overrides "
                        "--backends)")
    parser.add_argument("--schedules", default=",".join(SCHEDULES),
                        help="comma-separated schedule names (default: all)")
    parser.add_argument("--schedule", action="append", default=None,
                        metavar="NAME", dest="schedule",
                        help="run a single schedule (repeatable; overrides "
                        "--schedules)")
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLE_LIMIT,
                        help="cycle budget per cell (wedge detector)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU; 1 = serial)")
    parser.add_argument("--no-strict", action="store_true",
                        help="drop strict invariants (wound-attribution "
                        "losses become silent instead of diagnosed)")
    parser.add_argument("--report", metavar="FILE",
                        help="write the repro.adversary/v1 JSON report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress on stderr")
    parser.add_argument("--list-schedules", action="store_true",
                        help="list the named schedules and exit")
    parser.add_argument("--list-backends", action="store_true",
                        help="list the TM backends and exit")
    args = parser.parse_args(argv)

    if args.list_schedules:
        sys.stdout.write(list_schedules())
        return 0
    if args.list_backends:
        sys.stdout.write(render_backend_list())
        return 0

    backends = resolve_backends(args.backend or _comma_list(args.backends))
    schedules = resolve_schedules(args.schedule or _comma_list(args.schedules))
    strict = not args.no_strict

    jobs = min(effective_jobs(args.jobs), len(backends))
    if not args.quiet:
        sys.stderr.write(
            f"adversary: seed {args.seed}, {len(backends)} backend(s) x "
            f"{len(schedules)} schedule(s), {jobs} worker(s)\n"
        )
    progress = None
    if not args.quiet:
        def progress(done, total):
            sys.stderr.write(f"adversary: {done}/{total} backends done\n")

    rows = run_adversary_matrix(
        backends, schedules, args.seed, jobs=jobs,
        cycle_limit=args.cycles, strict=strict, progress=progress,
    )
    sys.stdout.write(render_matrix(rows))
    report = build_report(
        rows, args.seed, backends, schedules, args.cycles, strict
    )
    counts = report["counts"]
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    sys.stdout.write(f"\nadversary: {len(rows)} cells: {summary}\n")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    failures = [cell for cell in rows if not cell.ok]
    if failures:
        sys.stdout.write(
            "adversary: FAIL — "
            + "; ".join(
                f"{c.backend}/{c.schedule}: {c.detail or c.verdict}"
                for c in failures
            )
            + "\n"
        )
        return 1
    sys.stdout.write(
        "adversary: every schedule conforms (or aborts exactly as the "
        "theory requires) on every backend\n"
    )
    return 0
