"""Figure 5: eager vs lazy conflict management (E3) and
multiprogramming (E4).

Plots (a)-(d): FlexTM throughput for RBTree, Vacation-High, LFUCache and
RandomGraph under Eager and Lazy modes, normalized to the 1-thread
Eager run.  The paper's findings to reproduce: Lazy scales better once
contention appears (reader-writer concurrency pays off; commit-time
aborts leave a tiny window of vulnerability), Eager livelocks
RandomGraph, and for low-conflict workloads the two coincide.

Plots (e)-(f): a Prime-factorization application shares the machine
with LFUCache or RandomGraph; transactional threads yield the CPU on
abort.  Eager mode detects doomed transactions earlier and hands the
core to Prime sooner, so Prime scales ~20% better under Eager without
hurting the (concurrency-free) transactional workload.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.harness.parallel import PointSpec, run_points, unwrap
from repro.harness.report import format_series
from repro.harness.runner import ExperimentConfig

POLICY_WORKLOADS = ["RBTree", "Vacation-High", "LFUCache", "RandomGraph"]
MIX_WORKLOADS = ["RandomGraph", "LFUCache"]
DEFAULT_THREAD_POINTS = (1, 2, 4, 8, 16)


@dataclasses.dataclass
class PolicyPoint:
    workload: str
    mode: str
    threads: int
    throughput: float
    normalized: float
    commits: int
    aborts: int


def run_policy_comparison(
    workloads: Sequence[str] = POLICY_WORKLOADS,
    thread_points: Sequence[int] = DEFAULT_THREAD_POINTS,
    cycle_limit: int = 0,
    seed: int = 42,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    jobs: int = 1,
) -> Dict[str, List[PolicyPoint]]:
    """Figure 5(a)-(d): FlexTM Eager vs Lazy.

    ``trace_out`` names a directory for one Chrome trace per point
    (written by the worker that ran it); ``metrics_out`` likewise
    receives one windowed-metrics JSON artifact per point; ``jobs > 1``
    fans the points out across processes with bit-identical output.
    """
    specs: List[PointSpec] = []
    for workload in workloads:
        specs.append(
            PointSpec(
                config=ExperimentConfig(
                    workload=workload,
                    system="FlexTM",
                    threads=1,
                    mode=ConflictMode.EAGER,
                    cycle_limit=cycle_limit,
                    seed=seed,
                ),
                label=f"figure5:{workload}:baseline",
            )
        )
    for workload in workloads:
        for mode in (ConflictMode.EAGER, ConflictMode.LAZY):
            for threads in thread_points:
                specs.append(
                    PointSpec(
                        config=ExperimentConfig(
                            workload=workload,
                            system="FlexTM",
                            threads=threads,
                            mode=mode,
                            cycle_limit=cycle_limit,
                            seed=seed,
                        ),
                        label=f"figure5:{workload}:{mode.value}:{threads}t",
                        trace_dir=trace_out,
                        trace_name=f"figure5_{workload}_{mode.value}_{threads}t",
                        metrics_dir=metrics_out,
                        metrics_name=f"figure5_{workload}_{mode.value}_{threads}t",
                    )
                )
    outcomes = iter(run_points(specs, jobs=jobs))
    baselines = {
        workload: unwrap(next(outcomes)).throughput or 1.0
        for workload in workloads
    }
    results: Dict[str, List[PolicyPoint]] = {}
    for workload in workloads:
        base_tput = baselines[workload]
        points: List[PolicyPoint] = []
        for mode in (ConflictMode.EAGER, ConflictMode.LAZY):
            for threads in thread_points:
                result = unwrap(next(outcomes))
                points.append(
                    PolicyPoint(
                        workload=workload,
                        mode=mode.value,
                        threads=threads,
                        throughput=result.throughput,
                        normalized=result.throughput / base_tput,
                        commits=result.commits,
                        aborts=result.aborts,
                    )
                )
        results[workload] = points
    return results


@dataclasses.dataclass
class MixPoint:
    workload: str
    mode: str
    threads: int
    prime_items: int
    tx_commits: int


def run_multiprogramming(
    workloads: Sequence[str] = MIX_WORKLOADS,
    thread_points: Sequence[int] = (2, 4, 8),
    cycle_limit: int = 0,
    seed: int = 42,
    jobs: int = 1,
) -> Dict[str, List[MixPoint]]:
    """Figure 5(e)-(f): Prime sharing the machine with a TM workload.

    Implements the paper's user-level schedule: "on transaction abort
    the thread yields to compute-intensive work" — each aborting thread
    runs one Prime factorization before retrying.  Eager management
    detects doomed transactions earlier, so aborts (and therefore Prime
    interludes) come sooner and CPU wasted in doomed work shrinks;
    yielding also serializes the transactional side enough to sidestep
    Eager RandomGraph's livelock.
    """
    specs = [
        PointSpec(
            config=ExperimentConfig(
                workload=workload,
                system="FlexTM",
                threads=threads,
                mode=mode,
                cycle_limit=cycle_limit,
                seed=seed,
                yield_on_abort=True,
            ),
            label=f"figure5mix:{workload}:{mode.value}:{threads}t",
        )
        for workload in workloads
        for mode in (ConflictMode.EAGER, ConflictMode.LAZY)
        for threads in thread_points
    ]
    outcomes = iter(run_points(specs, jobs=jobs))
    results: Dict[str, List[MixPoint]] = {}
    for workload in workloads:
        points: List[MixPoint] = []
        for mode in (ConflictMode.EAGER, ConflictMode.LAZY):
            for threads in thread_points:
                result = unwrap(next(outcomes))
                prime_items = result.nontx_items
                points.append(
                    MixPoint(
                        workload=workload,
                        mode=mode.value,
                        threads=threads,
                        prime_items=prime_items,
                        tx_commits=result.commits,
                    )
                )
        results[workload] = points
    return results


def render_policy(results: Dict[str, List[PolicyPoint]]) -> str:
    lines = ["Figure 5(a)-(d): FlexTM Eager vs Lazy (normalized to Eager, 1 thread)"]
    for workload, points in results.items():
        lines.append(f"-- {workload} --")
        by_mode: Dict[str, List] = {}
        for point in points:
            by_mode.setdefault(point.mode, []).append((point.threads, point.normalized))
        for mode, series in by_mode.items():
            lines.append(format_series(f"  {mode}", series))
    return "\n".join(lines)


def render_multiprogramming(results: Dict[str, List[MixPoint]]) -> str:
    lines = ["Figure 5(e)-(f): Prime + transactional workload (items completed)"]
    for workload, points in results.items():
        lines.append(f"-- Prime + {workload} --")
        by_mode: Dict[str, List] = {}
        for point in points:
            by_mode.setdefault(point.mode, []).append((point.threads, point.prime_items))
        for mode, series in by_mode.items():
            lines.append(format_series(f"  Prime w/ {mode}", series))
    return "\n".join(lines)
