"""Table 2 (E5): FlexTM area estimation across three 65nm processors."""

from __future__ import annotations

from typing import Dict, List

from repro.area.model import (
    FlexTMAreaModel,
    PROCESSORS,
    PUBLISHED_TABLE2,
)
from repro.harness.report import format_table


def run_table2(signature_bits: int = 2048, num_processors: int = 16) -> Dict[str, dict]:
    """Model estimates paired with the paper's published values."""
    model = FlexTMAreaModel(signature_bits=signature_bits, num_processors=num_processors)
    out: Dict[str, dict] = {}
    for spec in PROCESSORS:
        estimate = model.estimate(spec)
        out[spec.name] = {
            "estimate": estimate,
            "published": PUBLISHED_TABLE2[spec.name],
        }
    return out


def render_table2(results: Dict[str, dict]) -> str:
    headers = [
        "Processor",
        "Sig mm2 (paper)",
        "CST regs (paper)",
        "OT mm2 (paper)",
        "State bits (paper)",
        "% core (paper)",
        "% L1D (paper)",
    ]
    rows: List[List[str]] = []
    for name, data in results.items():
        estimate, published = data["estimate"], data["published"]
        rows.append(
            [
                name,
                f"{estimate.signature_mm2:.3f} ({published['signature_mm2']})",
                f"{estimate.cst_registers} ({published['cst_registers']})",
                f"{estimate.ot_controller_mm2:.3f} ({published['ot_controller_mm2']})",
                f"{estimate.extra_state_bits} ({published['extra_state_bits']})",
                f"{estimate.core_increase_percent:.2f}% ({published['core_increase_percent']}%)",
                f"{estimate.l1_increase_percent:.2f}% ({published['l1_increase_percent']}%)",
            ]
        )
    return format_table(headers, rows, title="Table 2: FlexTM area estimation (model vs paper)")
