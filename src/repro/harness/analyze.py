"""The ``analyze`` subcommand: run simcheck over the source tree.

Examples::

    python -m repro.harness analyze
    python -m repro.harness analyze --format sarif --out simcheck.sarif
    python -m repro.harness analyze --rule SIM-P301 --rule SIM-P302
    python -m repro.harness analyze --update-baseline
    python -m repro.harness analyze --prune-baseline
    python -m repro.harness analyze --list-rules --format json
    python -m repro.harness analyze --modelcheck

Exit status is 1 when any *new* error-severity finding survives the
baseline and inline suppressions (and, with ``--strict``, when any
warning does), 0 otherwise.  See docs/ANALYSIS.md for the rule catalog
and the suppression workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import json as _json

from repro.analysis import all_rules, run_analysis
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.output import render_json, render_sarif, render_text


def _find_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml (else ``start`` itself)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness analyze",
        description="Run the simcheck static-analysis engine.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=[],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root paths are reported relative to "
        "(default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to suppress every current finding "
        "(prunes stale entries) and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline fingerprints no current finding matches "
        "(existing entries stay untouched), print the pruned count, "
        "exit 0",
    )
    parser.add_argument(
        "--modelcheck",
        action="store_true",
        help="also run the exhaustive TMESI/CST model checker and merge "
        "any SIM-M violation into the report",
    )
    parser.add_argument(
        "--modelcheck-caches",
        type=int,
        default=3,
        metavar="N",
        help="cache count for --modelcheck (default: 3)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as gating too",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined and inline-suppressed findings (text "
        "format only)",
    )
    return parser


def run_analyze_command(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        if args.format == "json":
            catalog = [
                {
                    "id": name,
                    "severity": rules[name].severity,
                    "scope": rules[name].scope,
                    "description": rules[name].description,
                }
                for name in sorted(rules)
            ]
            print(_json.dumps(catalog, indent=2))
        else:
            for name in sorted(rules):
                rule = rules[name]
                print(
                    f"{name}  [{rule.severity:7s}]  [{rule.scope}]  "
                    f"{rule.description}"
                )
        return 0

    if args.rule:
        unknown = [rule_id for rule_id in args.rule if rule_id not in rules]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        selected = [rules[rule_id] for rule_id in args.rule]
    else:
        selected = list(rules.values())

    root = Path(args.root).resolve() if args.root else _find_root(Path.cwd().resolve())
    targets = [Path(target) for target in (args.targets or ["src/repro"])]
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )

    if args.no_baseline:
        fingerprints = {}
    else:
        try:
            fingerprints = load_baseline(baseline_path)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2

    if args.update_baseline:
        # Re-run with no baseline so every current finding is captured.
        report = run_analysis(root, targets, rules=selected)
        write_baseline(baseline_path, report.findings)
        print(
            f"simcheck: baseline updated with {len(report.findings)} "
            f"finding(s) -> {baseline_path}"
        )
        return 0

    if args.prune_baseline:
        report = run_analysis(root, targets, rules=selected)
        try:
            kept, pruned = prune_baseline(baseline_path, report.findings)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(
            f"simcheck: pruned {pruned} stale baseline entr"
            f"{'y' if pruned == 1 else 'ies'} ({kept} kept) "
            f"-> {baseline_path}"
        )
        return 0

    report = run_analysis(
        root, targets, rules=selected, baseline_fingerprints=fingerprints
    )

    if args.modelcheck:
        from repro.analysis.modelcheck import check, findings_from

        result = check(caches=args.modelcheck_caches)
        report.findings.extend(findings_from(result, root))
        if result.dead_cells:
            print(
                f"modelcheck: {len(result.dead_cells)} dead spec cell(s): "
                + ", ".join(result.dead_cells),
                file=sys.stderr,
            )

    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report, selected)
    else:
        rendered = render_text(report, verbose=args.verbose)

    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        # Keep the one-line summary on stdout so CI logs stay readable.
        print(
            f"simcheck: wrote {args.format} report to {args.out} "
            f"({len(report.errors)} error(s), {len(report.warnings)} "
            "warning(s))"
        )
    else:
        sys.stdout.write(rendered)

    return report.exit_code(strict=args.strict)
