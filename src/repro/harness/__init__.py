"""Experiment harnesses: one driver per paper table/figure.

* :mod:`repro.harness.runner` — generic (workload, system, threads) runs
* :mod:`repro.harness.figure4` — throughput & scalability (Fig. 4a-g)
  and the conflicting-transactions table
* :mod:`repro.harness.figure5` — eager vs lazy (Fig. 5a-d) and the
  multiprogramming mix (Fig. 5e-f)
* :mod:`repro.harness.table2` — area estimation (Table 2)
* :mod:`repro.harness.table4` — FlexWatcher slowdowns (Table 4b)
* :mod:`repro.harness.overflow` — the Section 7.3 OT/redo-log study
* :mod:`repro.harness.pathology` — Bobba-taxonomy run diagnosis
* :mod:`repro.harness.sweep` — design-space sweeps with CSV export
* :mod:`repro.harness.report` — paper-style text rendering

Run ``python -m repro.harness all`` to regenerate every artifact.
"""

from repro.harness.runner import ExperimentConfig, run_experiment, SYSTEMS
from repro.harness.report import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "run_experiment",
    "SYSTEMS",
    "format_table",
    "format_series",
]
