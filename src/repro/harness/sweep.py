"""Parameter-sweep utility with CSV export and parallel fan-out.

A thin layer over :func:`repro.harness.runner.run_experiment` for users
running their own design-space explorations: cartesian sweeps over
workloads, systems, thread counts, conflict modes and arbitrary
SystemParams overrides, with results collected into rows suitable for
spreadsheets or pandas.

Sweep points are independent sealed simulations, so
:func:`run_sweep` fans them out across processes via
:mod:`repro.harness.parallel` when ``jobs > 1`` — rows come back in
:meth:`SweepSpec.configs` order and are bit-identical to a serial run.
A point that raises, crashes its worker, or exceeds the per-point
timeout becomes a structured error row (``status`` / ``error``
columns) instead of killing the sweep.

The module is also a CLI (see :func:`run_sweep_command`)::

    python -m repro.harness sweep --workloads HashTable,RBTree \
        --systems FlexTM,CGL --threads 1,2,4 --jobs 4 \
        --csv-out sweep.csv --bench-out BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import io
import itertools
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.harness.parallel import (
    PointOutcome,
    PointSpec,
    effective_jobs,
    render_progress,
    run_points,
    write_bench_json,
)
from repro.harness.runner import ExperimentConfig
from repro.params import SystemParams

#: Columns every sweep row carries, in order.  ``status`` is ``"ok"``
#: or a failure kind (``exception`` / ``crash`` / ``timeout``); failed
#: points zero their measurement columns and carry the message in
#: ``error``.
ROW_FIELDS = [
    "workload",
    "system",
    "threads",
    "mode",
    "seed",
    "cycles",
    "commits",
    "aborts",
    "throughput",
    "abort_ratio",
    "status",
    "error",
]

#: Opt-in pathology-indicator columns (``--pathology``), appended after
#: :data:`ROW_FIELDS` so the default schema stays locked.
PATHOLOGY_FIELDS = [
    "aborts_per_commit",
    "friendly_fire",
    "exposed_read_fraction",
    "duelling_upgrade",
    "summary_traps_per_commit",
    "convoying",
    "worst_pathology",
]


@dataclasses.dataclass
class SweepSpec:
    """The cartesian space to explore."""

    workloads: Sequence[str]
    systems: Sequence[str] = ("FlexTM",)
    thread_counts: Sequence[int] = (1, 4, 8)
    modes: Sequence[ConflictMode] = (ConflictMode.EAGER,)
    seeds: Sequence[int] = (42,)
    cycle_limit: int = 100_000
    params: Optional[SystemParams] = None

    def configs(self) -> Iterable[ExperimentConfig]:
        for workload, system, threads, mode, seed in itertools.product(
            self.workloads, self.systems, self.thread_counts, self.modes, self.seeds
        ):
            yield ExperimentConfig(
                workload=workload,
                system=system,
                threads=threads,
                mode=mode,
                seed=seed,
                cycle_limit=self.cycle_limit,
                params=self.params,
            )

    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.systems)
            * len(self.thread_counts)
            * len(self.modes)
            * len(self.seeds)
        )


def _row(
    config: ExperimentConfig, outcome: PointOutcome, pathology: bool = False
) -> Dict[str, object]:
    row: Dict[str, object] = {
        "workload": config.workload,
        "system": config.system,
        "threads": config.threads,
        "mode": config.mode.value,
        "seed": config.seed,
        "cycles": 0,
        "commits": 0,
        "aborts": 0,
        "throughput": 0.0,
        "abort_ratio": 0.0,
        "status": outcome.status,
        "error": outcome.error,
    }
    if pathology:
        row.update(
            aborts_per_commit=0.0,
            friendly_fire="",
            exposed_read_fraction=0.0,
            duelling_upgrade="",
            summary_traps_per_commit=0.0,
            convoying="",
            worst_pathology="",
        )
    if outcome.ok:
        result = outcome.result
        row.update(
            cycles=result.cycles,
            commits=result.commits,
            aborts=result.aborts,
            throughput=round(result.throughput, 2),
            abort_ratio=round(result.abort_ratio, 4),
        )
        if pathology:
            from repro.harness.pathology import analyze

            report = analyze(result)
            row.update(
                aborts_per_commit=round(report.aborts_per_commit, 3),
                friendly_fire=report.friendly_fire_risk,
                exposed_read_fraction=round(report.exposed_read_fraction, 3),
                duelling_upgrade=report.duelling_upgrade_risk,
                summary_traps_per_commit=round(report.summary_traps_per_commit, 3),
                convoying=report.convoying_risk,
                worst_pathology=report.worst(),
            )
    return row


def _point_spec(config: ExperimentConfig, metrics_out: Optional[str]) -> PointSpec:
    label = (
        f"{config.workload}/{config.system}/{config.threads}t/"
        f"{config.mode.value}/s{config.seed}"
    )
    return PointSpec(
        config=config,
        label=label,
        metrics_dir=metrics_out,
        metrics_name=(
            f"sweep_{config.workload}_{config.system}_{config.threads}t_"
            f"{config.mode.value}_s{config.seed}"
        ) if metrics_out else None,
    )


def run_sweep(
    spec: SweepSpec,
    progress=None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    bench_out: Optional[str] = None,
    pathology: bool = False,
    metrics_out: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Execute the sweep; returns one dict per configuration.

    Rows follow :meth:`SweepSpec.configs` order regardless of ``jobs``.
    ``progress`` keeps its historical ``progress(done, total)``
    signature.  ``bench_out`` additionally writes a
    ``BENCH_sweep.json`` wall-time document (see docs/PARALLEL.md).
    ``metrics_out`` names a directory receiving one windowed-metrics
    JSON artifact per point (row schema stays unchanged).
    """
    configs = list(spec.configs())
    specs = [_point_spec(config, metrics_out) for config in configs]
    callback = None
    if progress is not None:
        callback = lambda done, total, outcome: progress(done, total)
    started = time.perf_counter()
    outcomes = run_points(
        specs, jobs=jobs, timeout=timeout, retries=retries, progress=callback
    )
    elapsed = time.perf_counter() - started
    if bench_out:
        write_bench_json(
            bench_out,
            outcomes,
            jobs=effective_jobs(jobs),
            total_wall_time=elapsed,
            extra={
                "workloads": list(spec.workloads),
                "systems": list(spec.systems),
                "thread_counts": list(spec.thread_counts),
                "modes": [mode.value for mode in spec.modes],
                "seeds": list(spec.seeds),
                "cycle_limit": spec.cycle_limit,
            },
        )
    return [
        _row(config, outcome, pathology=pathology)
        for config, outcome in zip(configs, outcomes)
    ]


def to_csv(rows: List[Dict[str, object]], fields: Optional[List[str]] = None) -> str:
    """Render sweep rows as CSV text (``fields`` defaults to ROW_FIELDS)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=fields or ROW_FIELDS, lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(
    rows: List[Dict[str, object]], path: str, fields: Optional[List[str]] = None
) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(rows, fields))


# -- CLI ----------------------------------------------------------------------


def _comma_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _resolve_names(names: List[str], table, what: str) -> List[str]:
    lowered = {key.lower(): key for key in table}
    resolved = []
    for name in names:
        key = lowered.get(name.lower())
        if key is None:
            raise SystemExit(
                f"unknown {what} {name!r}; choose from {', '.join(sorted(table))}"
            )
        resolved.append(key)
    return resolved


def run_sweep_command(argv=None) -> int:
    """``python -m repro.harness sweep`` — run a sweep from the shell."""
    from repro.harness.runner import SYSTEMS
    from repro.workloads import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run a cartesian experiment sweep, in parallel, "
        "with CSV and BENCH_sweep.json output.",
    )
    parser.add_argument(
        "--workloads", required=True,
        help="comma-separated workload names (case-insensitive)",
    )
    parser.add_argument("--systems", default="FlexTM",
                        help="comma-separated TM system names")
    parser.add_argument("--threads", default="1,4,8",
                        help="comma-separated thread counts")
    parser.add_argument("--modes", default="eager",
                        help="comma-separated conflict modes (eager, lazy)")
    parser.add_argument("--seeds", default="42",
                        help="comma-separated RNG seeds")
    parser.add_argument("--cycles", type=int, default=100_000,
                        help="simulated cycles per point")
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-point wall-clock budget in seconds (0 = none; "
        "only enforced when --jobs > 1)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="relaunch budget for crashed/timed-out points (default 1)",
    )
    parser.add_argument(
        "--pathology", action="store_true",
        help="append pathology-indicator columns (FriendlyFire, "
        "DuellingUpgrade, Convoying) to every row",
    )
    parser.add_argument("--csv-out", metavar="FILE",
                        help="write rows here instead of stdout")
    parser.add_argument("--bench-out", metavar="FILE",
                        help="write BENCH_sweep.json wall-time report here")
    parser.add_argument("--metrics-out", metavar="DIR",
                        help="write one windowed-metrics JSON artifact "
                        "per point into DIR")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress on stderr")
    args = parser.parse_args(argv)

    spec = SweepSpec(
        workloads=_resolve_names(_comma_list(args.workloads), WORKLOADS, "workload"),
        systems=_resolve_names(_comma_list(args.systems), SYSTEMS, "system"),
        thread_counts=tuple(int(part) for part in _comma_list(args.threads)),
        modes=tuple(
            ConflictMode(part.lower()) for part in _comma_list(args.modes)
        ),
        seeds=tuple(int(part) for part in _comma_list(args.seeds)),
        cycle_limit=args.cycles,
    )
    configs = list(spec.configs())
    specs = [_point_spec(config, args.metrics_out) for config in configs]
    jobs = effective_jobs(args.jobs)
    if not args.quiet:
        sys.stderr.write(
            f"sweep: {len(specs)} points across {jobs} worker(s)\n"
        )
    started = time.perf_counter()
    outcomes = run_points(
        specs,
        jobs=jobs,
        timeout=args.timeout or None,
        retries=args.retries,
        progress=None if args.quiet else render_progress,
    )
    elapsed = time.perf_counter() - started
    rows = [
        _row(config, outcome, pathology=args.pathology)
        for config, outcome in zip(configs, outcomes)
    ]

    fields = ROW_FIELDS + PATHOLOGY_FIELDS if args.pathology else ROW_FIELDS
    text = to_csv(rows, fields)
    if args.csv_out:
        with open(args.csv_out, "w", newline="") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    if args.bench_out:
        write_bench_json(
            args.bench_out, outcomes, jobs=jobs, total_wall_time=elapsed,
            extra={
                "workloads": list(spec.workloads),
                "systems": list(spec.systems),
                "thread_counts": list(spec.thread_counts),
                "modes": [mode.value for mode in spec.modes],
                "seeds": list(spec.seeds),
                "cycle_limit": spec.cycle_limit,
            },
        )
    errors = sum(1 for outcome in outcomes if not outcome.ok)
    serial_estimate = sum(outcome.wall_time for outcome in outcomes)
    if not args.quiet:
        speedup = serial_estimate / elapsed if elapsed > 0 else 0.0
        sys.stderr.write(
            f"sweep: {len(outcomes)} points, {errors} error(s), "
            f"{elapsed:.2f}s total ({speedup:.2f}x vs serial estimate)\n"
        )
    return 1 if errors else 0
