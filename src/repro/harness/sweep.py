"""Parameter-sweep utility with CSV export.

A thin layer over :func:`repro.harness.runner.run_experiment` for users
running their own design-space explorations: cartesian sweeps over
workloads, systems, thread counts, conflict modes and arbitrary
SystemParams overrides, with results collected into rows suitable for
spreadsheets or pandas.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.params import SystemParams

#: Columns every sweep row carries, in order.
ROW_FIELDS = [
    "workload",
    "system",
    "threads",
    "mode",
    "seed",
    "cycles",
    "commits",
    "aborts",
    "throughput",
    "abort_ratio",
]


@dataclasses.dataclass
class SweepSpec:
    """The cartesian space to explore."""

    workloads: Sequence[str]
    systems: Sequence[str] = ("FlexTM",)
    thread_counts: Sequence[int] = (1, 4, 8)
    modes: Sequence[ConflictMode] = (ConflictMode.EAGER,)
    seeds: Sequence[int] = (42,)
    cycle_limit: int = 100_000
    params: Optional[SystemParams] = None

    def configs(self) -> Iterable[ExperimentConfig]:
        for workload, system, threads, mode, seed in itertools.product(
            self.workloads, self.systems, self.thread_counts, self.modes, self.seeds
        ):
            yield ExperimentConfig(
                workload=workload,
                system=system,
                threads=threads,
                mode=mode,
                seed=seed,
                cycle_limit=self.cycle_limit,
                params=self.params,
            )

    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.systems)
            * len(self.thread_counts)
            * len(self.modes)
            * len(self.seeds)
        )


def run_sweep(spec: SweepSpec, progress=None) -> List[Dict[str, object]]:
    """Execute the sweep; returns one dict per configuration."""
    rows: List[Dict[str, object]] = []
    for index, config in enumerate(spec.configs()):
        result = run_experiment(config)
        rows.append(
            {
                "workload": config.workload,
                "system": config.system,
                "threads": config.threads,
                "mode": config.mode.value,
                "seed": config.seed,
                "cycles": result.cycles,
                "commits": result.commits,
                "aborts": result.aborts,
                "throughput": round(result.throughput, 2),
                "abort_ratio": round(result.abort_ratio, 4),
            }
        )
        if progress is not None:
            progress(index + 1, spec.size())
    return rows


def to_csv(rows: List[Dict[str, object]]) -> str:
    """Render sweep rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=ROW_FIELDS, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(rows: List[Dict[str, object]], path: str) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(rows))
