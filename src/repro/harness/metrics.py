"""The ``metrics`` subcommand: windowed-series artifacts and dashboards.

Usage::

    python -m repro.harness metrics <workload> <system> [--threads N]
        [--cycles N] [--seed N] [--mode eager|lazy] [--window N]
        [--sample-interval N] [--degrade] [--json-out FILE.json]
        [--html-out FILE.html]

    python -m repro.harness metrics compare A.json B.json
        [--json-out FILE.json]

The run form arms a :class:`~repro.obs.metrics.MetricsHub` on a single
measurement point and writes the ``repro.metrics/v1`` JSON artifact
(windowed time series, log-bucket histograms, wounded-by chains,
pathology annotations) plus an optional self-contained HTML dashboard.

``compare`` diffs two artifacts window by window and **flags divergent
windows**: identical runs exit 0, any totals/series divergence exits 1
with a per-window report — the determinism tripwire for CI.

The module also provides :func:`sweep_hub` / :func:`write_point_metrics`,
the shared helpers behind the figure/overflow/sweep harnesses'
``--metrics-out`` directories (mirroring ``trace.write_point_trace``).
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional

from repro.obs.causality import annotate_pathologies, extract_chains
from repro.obs.dashboard import render_dashboard
from repro.obs.metrics import MetricsHub

#: Schema identifier stamped into every metrics artifact.
METRICS_SCHEMA = "repro.metrics/v1"

#: Keys every metrics artifact must carry.
METRICS_REQUIRED_KEYS = (
    "schema",
    "run",
    "totals",
    "counters",
    "gauges",
    "histograms",
    "series",
    "causality",
)

#: Keys every ``totals`` section must carry (the uniform report shape —
#: ``aborts_by_kind`` AND ``escalations``, never one without the other).
TOTALS_REQUIRED_KEYS = (
    "cycles",
    "commits",
    "aborts",
    "throughput",
    "aborts_by_kind",
    "escalations",
    "commits_by_path",
    "fallback_rate",
)

#: Chains reported per artifact (longest first).
MAX_CHAINS = 10


def sweep_hub(window_cycles: int = 2048,
              sample_interval: int = 256) -> MetricsHub:
    """Hub settings for whole-sweep metrics (one artifact per point)."""
    return MetricsHub(
        window_cycles=window_cycles, sample_interval=sample_interval
    )


def commits_by_path(escalations: Dict[str, int]) -> Dict[str, int]:
    """Commits per execution path, from the ``fallback_*`` counters.

    Backends without an intrinsic fallback ladder report all zeros —
    the uniform shape, so the totals schema never forks per backend.
    """
    return {
        "htm": escalations.get("fallback_commits_htm", 0),
        "sw": escalations.get("fallback_commits_sw", 0),
        "irrevocable": escalations.get("fallback_commits_irrevocable", 0),
    }


def fallback_rate(commits: int, escalations: Dict[str, int]) -> float:
    """Fraction of commits that landed on a software fallback path."""
    if not commits:
        return 0.0
    paths = commits_by_path(escalations)
    return round((paths["sw"] + paths["irrevocable"]) / commits, 4)


def build_artifact(hub: MetricsHub, result,
                   run_info: Dict[str, object]) -> Dict[str, object]:
    """Assemble the ``repro.metrics/v1`` document for one run."""
    data = hub.to_dict()
    chains = extract_chains(hub.abort_records, limit=MAX_CHAINS)
    pathologies = annotate_pathologies(
        hub.abort_records, hub.window_cycles,
        commits_by_window=hub.commits_by_window(),
    )
    return {
        "schema": METRICS_SCHEMA,
        "run": dict(run_info),
        "totals": {
            "cycles": result.cycles,
            "commits": result.commits,
            "aborts": result.aborts,
            "nontx_items": result.nontx_items,
            "throughput": round(result.throughput, 4),
            "aborts_by_kind": dict(result.aborts_by_kind),
            "escalations": dict(result.escalations),
            "commits_by_path": commits_by_path(result.escalations),
            "fallback_rate": fallback_rate(
                result.commits, result.escalations
            ),
        },
        "counters": data["counters"],
        "gauges": data["gauges"],
        "histograms": data["histograms"],
        "series": data["series"],
        "causality": {
            "records": len(hub.abort_records),
            "records_dropped": hub.abort_records_dropped,
            "chains": [c.to_dict(hub.abort_records) for c in chains],
            "pathologies": pathologies,
        },
        "sampling": {
            "window_cycles": data["window_cycles"],
            "sample_interval": data["sample_interval"],
            "samples_taken": data["samples_taken"],
            "proc_cycles": data["proc_cycles"],
        },
    }


def validate_metrics_artifact(document: object) -> Optional[str]:
    """Schema check for a metrics artifact; returns an error or None."""
    if not isinstance(document, dict):
        return "document is not a JSON object"
    if document.get("schema") != METRICS_SCHEMA:
        return (
            f"schema is {document.get('schema')!r}, expected "
            f"{METRICS_SCHEMA!r}"
        )
    for key in METRICS_REQUIRED_KEYS:
        if key not in document:
            return f"missing key {key!r}"
    totals = document["totals"]
    if not isinstance(totals, dict):
        return "totals is not an object"
    for key in TOTALS_REQUIRED_KEYS:
        if key not in totals:
            return f"totals missing key {key!r}"
    series = document["series"]
    if not isinstance(series, dict):
        return "series is not an object"
    for name in series:
        entry = series[name]
        if not isinstance(entry, dict) or "points" not in entry:
            return f"series {name!r} missing points"
        for point in entry["points"]:
            if not isinstance(point, list) or len(point) != 2:
                return f"series {name!r} has a malformed point"
    return None


def write_metrics_artifact(document: Dict[str, object], path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def write_point_metrics(hub: MetricsHub, result, directory: str,
                        point_name: str) -> str:
    """Write one sweep point's metrics artifact into ``directory``.

    Used by the figure4/figure5/overflow/sweep harnesses when run with
    ``--metrics-out DIR``; returns the file path written.
    """
    document = build_artifact(hub, result, run_info={"label": point_name})
    path = os.path.join(directory, f"{point_name}.json")
    write_metrics_artifact(document, path)
    return path


# -- compare ------------------------------------------------------------------


def compare_artifacts(a: Dict, b: Dict) -> List[Dict[str, object]]:
    """Window-by-window diff of two artifacts; [] when identical.

    Each divergence names the series (or totals key), the window start
    cycle, and both values — enough to localize *when* two runs parted
    ways, not just that they did.
    """
    divergences: List[Dict[str, object]] = []
    totals_a = a.get("totals", {})
    totals_b = b.get("totals", {})
    for key in sorted(set(totals_a) | set(totals_b)):
        if totals_a.get(key) != totals_b.get(key):
            divergences.append({
                "kind": "totals",
                "name": key,
                "a": totals_a.get(key),
                "b": totals_b.get(key),
            })
    series_a = a.get("series", {})
    series_b = b.get("series", {})
    for name in sorted(set(series_a) | set(series_b)):
        points_a = dict(
            map(tuple, series_a.get(name, {}).get("points", []))
        )
        points_b = dict(
            map(tuple, series_b.get(name, {}).get("points", []))
        )
        for window in sorted(set(points_a) | set(points_b)):
            value_a = points_a.get(window, 0)
            value_b = points_b.get(window, 0)
            if value_a != value_b:
                divergences.append({
                    "kind": "series",
                    "name": name,
                    "window_start": window,
                    "a": value_a,
                    "b": value_b,
                })
    return divergences


def _load_artifact(path: str) -> Dict:
    with open(path) as handle:
        document = json.load(handle)
    error = validate_metrics_artifact(document)
    if error is not None:
        raise SystemExit(f"{path}: invalid metrics artifact: {error}")
    return document


def _run_compare(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness metrics compare",
        description="Diff two metrics artifacts window by window.",
    )
    parser.add_argument("a", help="first metrics artifact (JSON)")
    parser.add_argument("b", help="second metrics artifact (JSON)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the divergence report here")
    args = parser.parse_args(argv)
    first = _load_artifact(args.a)
    second = _load_artifact(args.b)
    divergences = compare_artifacts(first, second)
    if args.json_out:
        write_metrics_artifact(
            {"schema": "repro.metrics_compare/v1",
             "a": args.a, "b": args.b,
             "divergences": divergences},
            args.json_out,
        )
    if not divergences:
        print(f"identical: {args.a} == {args.b} (no divergent windows)")
        return 0
    print(f"DIVERGENT: {len(divergences)} difference(s) between "
          f"{args.a} and {args.b}")
    for divergence in divergences[:20]:
        if divergence["kind"] == "totals":
            print(f"  totals.{divergence['name']}: "
                  f"{divergence['a']} != {divergence['b']}")
        else:
            print(f"  series {divergence['name']} @ cycle "
                  f"{divergence['window_start']}: "
                  f"{divergence['a']} != {divergence['b']}")
    if len(divergences) > 20:
        print(f"  ... and {len(divergences) - 20} more")
    return 1


# -- the CLI ------------------------------------------------------------------


def run_metrics_command(argv=None) -> int:
    argv = list(argv or [])
    if argv and argv[0] == "compare":
        return _run_compare(argv[1:])
    # Imported here, not at module top: repro.harness.runner builds the
    # machine layer, and keeping it lazy makes `--help` instant.
    from repro.core.descriptor import ConflictMode
    from repro.harness.runner import SYSTEMS, ExperimentConfig, run_experiment
    from repro.harness.trace import _resolve
    from repro.resilience import DegradeSpec
    from repro.workloads import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness metrics",
        description="Run one metrics-armed experiment; write the "
                    "windowed-series artifact and dashboard.",
    )
    parser.add_argument("workload", help="workload name (case-insensitive)")
    parser.add_argument("system", help="TM system name (case-insensitive)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=0,
                        help="cycle budget (0 = default / REPRO_CYCLES)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--mode", choices=["eager", "lazy"], default="eager")
    parser.add_argument("--window", type=int, default=2048,
                        help="time-series window width in cycles")
    parser.add_argument("--sample-interval", type=int, default=256,
                        help="scheduler steps between pressure samples")
    parser.add_argument("--degrade", action="store_true",
                        help="arm the resilience controller (rung residency)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the repro.metrics/v1 artifact here")
    parser.add_argument("--html-out", metavar="FILE",
                        help="write the self-contained HTML dashboard here")
    args = parser.parse_args(argv)
    if args.window < 1:
        parser.error("--window must be >= 1")
    if args.sample_interval < 1:
        parser.error("--sample-interval must be >= 1")

    workload = _resolve(args.workload, WORKLOADS, "workload")
    system = _resolve(args.system, SYSTEMS, "system")
    mode = ConflictMode.EAGER if args.mode == "eager" else ConflictMode.LAZY
    hub = MetricsHub(
        window_cycles=args.window, sample_interval=args.sample_interval
    )
    result = run_experiment(
        ExperimentConfig(
            workload=workload,
            system=system,
            threads=args.threads,
            mode=mode,
            cycle_limit=args.cycles,
            seed=args.seed,
            metrics=hub,
            degrade=DegradeSpec() if args.degrade else None,
        )
    )
    label = f"{workload}/{system}/{args.threads}t/{args.mode}/s{args.seed}"
    document = build_artifact(hub, result, run_info={
        "label": label,
        "workload": workload,
        "system": system,
        "threads": args.threads,
        "mode": args.mode,
        "seed": args.seed,
        "cycle_limit": result.cycles,
    })
    error = validate_metrics_artifact(document)
    if error is not None:  # pragma: no cover — builder and schema agree
        print(f"metrics schema error: {error}")
        return 1

    totals = document["totals"]
    print(f"run: {label}")
    print(f"cycles: {totals['cycles']}  commits: {totals['commits']}  "
          f"aborts: {totals['aborts']}  "
          f"throughput: {totals['throughput']} commits/Mcycle")
    if totals["aborts_by_kind"]:
        parts = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(totals["aborts_by_kind"].items())
        )
        print(f"aborts by kind: {parts}")
    causality = document["causality"]
    if causality["chains"]:
        top = causality["chains"][0]
        print(f"longest wounded-by chain: {top['length']} aborts, "
              f"{top['total_wasted_cycles']} wasted cycles "
              f"(cycles {top['start_cycle']}..{top['end_cycle']})")
    for pathology in causality["pathologies"]:
        print(f"pathology @ cycle {pathology['start_cycle']}: "
              f"{pathology['kind']} — {pathology['detail']}")
    print(f"pressure samples: {document['sampling']['samples_taken']}  "
          f"series: {len(document['series'])}  "
          f"windows of {args.window} cycles")

    if args.json_out:
        write_metrics_artifact(document, args.json_out)
        print(f"metrics artifact written: {args.json_out}")
    if args.html_out:
        page = render_dashboard([document], title=f"FlexTM metrics — {label}")
        directory = os.path.dirname(os.path.abspath(args.html_out))
        os.makedirs(directory, exist_ok=True)
        with open(args.html_out, "w") as handle:
            handle.write(page)
        print(f"dashboard written: {args.html_out}")
    return 0
