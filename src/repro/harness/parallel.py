"""Parallel experiment executor with deterministic fan-out.

Every paper artifact is a cartesian sweep over independent
``(workload, system, threads, mode, seed)`` points, and each point is a
sealed deterministic simulation: it builds a fresh machine, runs, and
returns a :class:`~repro.runtime.scheduler.RunResult` that depends only
on its :class:`~repro.harness.runner.ExperimentConfig`.  Host-level
parallelism is therefore free speedup with zero result drift — this
module fans points out across CPU cores while guaranteeing:

* **Determinism** — results come back ordered by submission index, so a
  ``--jobs 8`` sweep produces bit-identical rows to ``--jobs 1``
  regardless of completion order.
* **Isolation** — each point runs in its own forked process; a crashed
  or hung worker yields a structured :class:`PointOutcome` error, never
  a dead sweep.
* **Bounded retry** — crashed and timed-out points are relaunched up to
  ``retries`` extra times before being reported as failures.
  Deterministic Python exceptions (bad workload name, simulator
  assertion) are *not* retried: rerunning a pure function cannot
  change its answer.

``--jobs 1`` (the default for library callers) never forks: points run
inline, preserving the exact serial code path.

The engine also measures what it runs: :func:`bench_payload` renders a
machine-readable ``BENCH_sweep.json`` document (per-point wall time,
totals, speedup vs. a serial estimate, host metadata) consumed by the
CI bench gate (:mod:`repro.harness.benchgate`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import platform
import sys
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.runner import ExperimentConfig, run_experiment
from repro.runtime.scheduler import RunResult

#: Schema identifier stamped into every BENCH_sweep.json document.
BENCH_SCHEMA = "repro.bench_sweep/v1"

#: Keys every BENCH_sweep.json document must carry.
BENCH_REQUIRED_KEYS = (
    "schema",
    "jobs",
    "num_points",
    "num_errors",
    "total_wall_time_s",
    "serial_estimate_s",
    "speedup_vs_serial_estimate",
    "points",
    "host",
)

#: Keys every per-point entry in BENCH_sweep.json must carry.
BENCH_POINT_KEYS = ("label", "ok", "status", "attempts", "wall_time_s")


@dataclasses.dataclass
class PointSpec:
    """One unit of fan-out work: a config plus optional trace output.

    Traces are written *inside* the worker (the tracer never crosses
    the process boundary), into ``trace_dir/trace_name.json``.
    """

    config: ExperimentConfig
    label: str = ""
    trace_dir: Optional[str] = None
    trace_name: Optional[str] = None
    #: Metrics artifacts mirror traces: armed and written in the worker,
    #: into ``metrics_dir/metrics_name.metrics.json``.
    metrics_dir: Optional[str] = None
    metrics_name: Optional[str] = None


@dataclasses.dataclass
class PointOutcome:
    """What happened to one point, in submission order.

    ``status`` is ``"ok"`` or one of the failure kinds:

    * ``"exception"`` — the point raised inside ``run_experiment``
      (deterministic; never retried).
    * ``"crash"`` — the worker process died without reporting
      (segfault, ``os._exit``, OOM kill).
    * ``"timeout"`` — the point exceeded the per-point budget and the
      worker was terminated.
    """

    index: int
    label: str
    ok: bool
    status: str
    result: Optional[RunResult] = None
    error: str = ""
    attempts: int = 1
    wall_time: float = 0.0
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None


def unwrap(outcome: "PointOutcome") -> RunResult:
    """Return the outcome's result, raising loudly on a failed point.

    Figure/overflow harnesses use this: a missing measurement point has
    no sensible error row in a figure, so the failure (including the
    worker's message) aborts artifact generation instead.
    """
    if not outcome.ok:
        raise RuntimeError(
            f"measurement point {outcome.label or outcome.index} failed "
            f"({outcome.status}): {outcome.error}"
        )
    assert outcome.result is not None
    return outcome.result


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: ``None``/0 means one per CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _execute_point(config: ExperimentConfig) -> RunResult:
    """Indirection over :func:`run_experiment`.

    Workers call through this module-level name so tests can substitute
    crashing / hanging behaviour (fork-started children inherit the
    patched module).
    """
    return run_experiment(config)


def _run_one(spec: PointSpec):
    """Execute one point (in-process).

    Returns ``(result, trace_path, metrics_path)``.
    """
    config = spec.config
    tracer = None
    if spec.trace_dir:
        from repro.harness.trace import sweep_tracer

        tracer = sweep_tracer()
        config = dataclasses.replace(config, tracer=tracer)
    hub = None
    if spec.metrics_dir:
        from repro.harness.metrics import sweep_hub

        hub = sweep_hub()
        config = dataclasses.replace(config, metrics=hub)
    result = _execute_point(config)
    trace_path = None
    if tracer is not None:
        from repro.harness.trace import write_point_trace

        trace_path = write_point_trace(
            tracer, spec.trace_dir, spec.trace_name or spec.label or "point"
        )
        # The tracer stays in the worker; results travel light.
        result.trace = None
    metrics_path = None
    if hub is not None:
        from repro.harness.metrics import write_point_metrics

        metrics_path = write_point_metrics(
            hub, result, spec.metrics_dir, spec.metrics_name or spec.label or "point"
        )
        # Like the tracer: the hub stays in the worker.
        result.metrics = None
    return result, trace_path, metrics_path


def _worker(conn, spec: PointSpec) -> None:
    """Child-process entry: run one point, ship the outcome, exit."""
    try:
        result, trace_path, metrics_path = _run_one(spec)
        conn.send(("ok", result, trace_path, metrics_path))
    except BaseException as exc:  # noqa: BLE001 — everything becomes a row
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        except Exception:
            pass  # parent sees EOF and reports a crash
    finally:
        conn.close()


def _mp_context():
    """Prefer fork (cheap, inherits loaded modules); fall back cleanly."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX hosts
        return multiprocessing.get_context()


class _Live:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("index", "spec", "process", "conn", "started", "deadline")

    def __init__(self, index, spec, process, conn, started, deadline):
        self.index = index
        self.spec = spec
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


def run_points(
    points: Sequence[PointSpec],
    jobs: Optional[int] = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int, PointOutcome], None]] = None,
) -> List[PointOutcome]:
    """Run every point; return outcomes ordered by submission index.

    ``jobs <= 1`` runs inline (no subprocesses, no timeout enforcement —
    there is nothing to interrupt in-process).  ``jobs > 1`` fans out
    across worker processes, at most ``jobs`` in flight.  ``progress``
    is invoked as ``progress(done, total, outcome)`` each time a point
    reaches its final state, in completion order.
    """
    specs = list(points)
    total = len(specs)
    jobs = effective_jobs(jobs)
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if jobs <= 1 or total <= 1:
        return _run_serial(specs, progress)
    return _run_pool(specs, jobs, timeout, retries, progress)


def _run_serial(specs, progress) -> List[PointOutcome]:
    outcomes: List[PointOutcome] = []
    for index, spec in enumerate(specs):
        started = time.perf_counter()
        try:
            result, trace_path, metrics_path = _run_one(spec)
            outcome = PointOutcome(
                index=index,
                label=spec.label,
                ok=True,
                status="ok",
                result=result,
                wall_time=time.perf_counter() - started,
                trace_path=trace_path,
                metrics_path=metrics_path,
            )
        except Exception as exc:
            outcome = PointOutcome(
                index=index,
                label=spec.label,
                ok=False,
                status="exception",
                error=f"{type(exc).__name__}: {exc}",
                wall_time=time.perf_counter() - started,
            )
        outcomes.append(outcome)
        if progress is not None:
            progress(len(outcomes), len(specs), outcome)
    return outcomes


def _run_pool(specs, jobs, timeout, retries, progress) -> List[PointOutcome]:
    context = _mp_context()
    outcomes: List[Optional[PointOutcome]] = [None] * len(specs)
    attempts = [0] * len(specs)
    spent = [0.0] * len(specs)
    pending = deque(range(len(specs)))
    live: Dict[object, _Live] = {}
    done = 0

    def launch(index: int) -> None:
        spec = specs[index]
        attempts[index] += 1
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker, args=(child_conn, spec), daemon=True
        )
        process.start()
        child_conn.close()
        now = time.perf_counter()
        live[parent_conn] = _Live(
            index, spec, process, parent_conn, now,
            now + timeout if timeout else None,
        )

    def finalize(entry: _Live, outcome: PointOutcome) -> None:
        nonlocal done
        outcome.attempts = attempts[entry.index]
        outcome.wall_time = spent[entry.index]
        outcomes[entry.index] = outcome
        done += 1
        if progress is not None:
            progress(done, len(specs), outcome)

    def retire(entry: _Live, status: str, error: str) -> None:
        """A worker died (crash/timeout): retry if budget remains."""
        if attempts[entry.index] <= retries:
            pending.appendleft(entry.index)
            return
        finalize(
            entry,
            PointOutcome(
                index=entry.index,
                label=entry.spec.label,
                ok=False,
                status=status,
                error=error,
            ),
        )

    try:
        while pending or live:
            while pending and len(live) < jobs:
                launch(pending.popleft())
            wait_budget = None
            if timeout:
                now = time.perf_counter()
                wait_budget = max(
                    0.0, min(entry.deadline for entry in live.values()) - now
                )
            ready = connection_wait(list(live), timeout=wait_budget)
            now = time.perf_counter()
            for conn in ready:
                entry = live.pop(conn)
                spent[entry.index] += now - entry.started
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                conn.close()
                entry.process.join()
                if message is None:
                    code = entry.process.exitcode
                    retire(entry, "crash", f"worker died (exit code {code})")
                elif message[0] == "ok":
                    _, result, trace_path, metrics_path = message
                    finalize(
                        entry,
                        PointOutcome(
                            index=entry.index,
                            label=entry.spec.label,
                            ok=True,
                            status="ok",
                            result=result,
                            trace_path=trace_path,
                            metrics_path=metrics_path,
                        ),
                    )
                else:
                    _, error, _trace_back = message
                    finalize(
                        entry,
                        PointOutcome(
                            index=entry.index,
                            label=entry.spec.label,
                            ok=False,
                            status="exception",
                            error=error,
                        ),
                    )
            if timeout:
                for conn, entry in list(live.items()):
                    if now < entry.deadline:
                        continue
                    del live[conn]
                    spent[entry.index] += now - entry.started
                    _stop(entry.process)
                    conn.close()
                    retire(
                        entry,
                        "timeout",
                        f"point exceeded {timeout:g}s budget",
                    )
    finally:
        for entry in live.values():
            _stop(entry.process)
            entry.conn.close()
    return [outcome for outcome in outcomes if outcome is not None]


def _stop(process) -> None:
    """Terminate a worker, escalating to SIGKILL if it lingers."""
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(1.0)
    if process.is_alive():  # pragma: no cover — SIGTERM is always enough here
        process.kill()
        process.join()


# -- BENCH_sweep.json ---------------------------------------------------------


def host_metadata() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def bench_payload(
    outcomes: Sequence[PointOutcome],
    jobs: int,
    total_wall_time: float,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Render outcomes as the ``BENCH_sweep.json`` document.

    ``serial_estimate_s`` sums per-point wall times — what the sweep
    would have cost on one core — so ``speedup_vs_serial_estimate``
    tracks the fan-out's real win on this host.
    """
    serial_estimate = sum(outcome.wall_time for outcome in outcomes)
    errors = [outcome for outcome in outcomes if not outcome.ok]
    document: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "jobs": jobs,
        "num_points": len(outcomes),
        "num_errors": len(errors),
        "total_wall_time_s": round(total_wall_time, 6),
        "serial_estimate_s": round(serial_estimate, 6),
        "speedup_vs_serial_estimate": round(
            serial_estimate / total_wall_time, 4
        ) if total_wall_time > 0 else 0.0,
        "points": [
            {
                "label": outcome.label,
                "ok": outcome.ok,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "wall_time_s": round(outcome.wall_time, 6),
                **({"error": outcome.error} if outcome.error else {}),
            }
            for outcome in outcomes
        ],
        "host": host_metadata(),
    }
    if extra:
        document["sweep"] = extra
    return document


def write_bench_json(
    path: str,
    outcomes: Sequence[PointOutcome],
    jobs: int,
    total_wall_time: float,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    import json

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            bench_payload(outcomes, jobs, total_wall_time, extra=extra),
            handle,
            indent=2,
            sort_keys=False,
        )
        handle.write("\n")


def validate_bench_payload(document: object) -> Optional[str]:
    """Schema check for BENCH_sweep.json; returns an error or None."""
    if not isinstance(document, dict):
        return "document is not a JSON object"
    if document.get("schema") != BENCH_SCHEMA:
        return f"schema is {document.get('schema')!r}, expected {BENCH_SCHEMA!r}"
    for key in BENCH_REQUIRED_KEYS:
        if key not in document:
            return f"missing key {key!r}"
    points = document["points"]
    if not isinstance(points, list):
        return "points is not a list"
    if len(points) != document["num_points"]:
        return "num_points does not match len(points)"
    for position, point in enumerate(points):
        if not isinstance(point, dict):
            return f"points[{position}] is not an object"
        for key in BENCH_POINT_KEYS:
            if key not in point:
                return f"points[{position}] missing key {key!r}"
    errors = sum(1 for point in points if not point["ok"])
    if errors != document["num_errors"]:
        return "num_errors does not match error points"
    return None


def render_progress(done: int, total: int, outcome: PointOutcome) -> None:
    """Default progress reporter: one stderr line per finished point."""
    marker = "ok" if outcome.ok else outcome.status.upper()
    label = outcome.label or f"point {outcome.index}"
    sys.stderr.write(
        f"[{done}/{total}] {label}: {marker} ({outcome.wall_time:.2f}s"
        + (f", {outcome.attempts} attempts" if outcome.attempts > 1 else "")
        + ")\n"
    )
    sys.stderr.flush()
