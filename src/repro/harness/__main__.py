"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro.harness table2
    python -m repro.harness table4
    python -m repro.harness figure4 [--cycles N] [--threads 1,4,8]
    python -m repro.harness figure5 [--cycles N]
    python -m repro.harness conflicts
    python -m repro.harness overflow
    python -m repro.harness all

Any figure/overflow artifact accepts ``--trace-out DIR`` to also dump
one Chrome/Perfetto trace per measurement point, ``--metrics-out DIR``
to dump one windowed-metrics JSON artifact per point, and ``--jobs N``
to fan independent measurement points out across worker processes
(``--jobs 0`` = one per CPU; output is bit-identical to ``--jobs 1``).

Free-form sweeps run through the ``sweep`` subcommand::

    python -m repro.harness sweep --workloads HashTable,RBTree \\
        --systems FlexTM,CGL --threads 1,2,4 --jobs 4 \\
        --csv-out sweep.csv --bench-out BENCH_sweep.json

See ``python -m repro.harness sweep --help`` and docs/PARALLEL.md.

A single run can be traced and inspected directly::

    python -m repro.harness trace hashtable FlexTM --threads 4 \\
        --cycles 50000 --trace-out /tmp/trace.json

See ``python -m repro.harness trace --help`` and docs/OBSERVABILITY.md.

A single run can also be measured with the windowed metrics pipeline —
JSON artifact plus a self-contained HTML dashboard — and two artifacts
can be diffed window by window::

    python -m repro.harness metrics hashtable FlexTM --threads 4 \\
        --cycles 50000 --json-out run.metrics.json --html-out run.html
    python -m repro.harness metrics compare a.metrics.json b.metrics.json

See ``python -m repro.harness metrics --help`` and
docs/OBSERVABILITY.md.

The robustness fault matrix runs through the ``chaos`` subcommand::

    python -m repro.harness chaos --seed 1 --jobs 2 --report chaos.json

Every backend runs under every seeded fault profile with invariants,
the livelock watchdog, and the serializability oracle armed; the exit
status is non-zero on any crash, wedge, or silent corruption.  See
``python -m repro.harness chaos --help`` and docs/ROBUSTNESS.md.

The adversarial conformance matrix runs the named schedules from the
TM-theory literature through the scripted-schedule engine::

    python -m repro.harness adversary --seed 1 --jobs 2 \\
        --report adversary.json

Every backend runs every named schedule under a schedule director with
strict invariants, opacity/zombie probes, and the serializability
oracle armed; the exit status is non-zero on any ``violates`` verdict.
``--list-schedules`` prints the catalog.  See
``python -m repro.harness adversary --help`` and docs/ADVERSARY.md.

The adaptive degradation ladder runs the same matrix with the
resilience controller armed through the ``degrade`` subcommand::

    python -m repro.harness degrade --seed 1 --jobs 2 --report degrade.json

Each cell reports commits per ladder rung (healthy / boosted / eager /
irrevocable) and time-to-recovery; the exit status is non-zero if any
cell wedges — the forward-progress guarantee.  See
``python -m repro.harness degrade --help`` and docs/RESILIENCE.md.

The simcheck static-analysis engine runs through the ``analyze``
subcommand::

    python -m repro.harness analyze [--format text|json|sarif]

It gates determinism, hook-site hygiene, the tracer-event registry,
and TMESI protocol exhaustiveness against the machine-readable spec in
``repro.coherence.spec``; the exit status is non-zero on any new
error-severity finding.  See ``python -m repro.harness analyze --help``
and docs/ANALYSIS.md.

The exhaustive protocol model checker runs through the ``modelcheck``
subcommand::

    python -m repro.harness modelcheck --caches 3

It explores every reachable interleaving of the spec tables for one
line across N caches, checks the SIM-M401..407 invariant catalog
(SWMR, CST dual-update symmetry, lost responses, TSW legality,
quiescence), reports dead spec cells, and replays any minimal
counterexample on the real simulator through the adversary bridge;
the exit status is non-zero on any violation or dead cell.  See
``python -m repro.harness modelcheck --help`` and docs/ANALYSIS.md.

The best-effort-HTM capacity sweep runs through the ``capacity``
subcommand::

    python -m repro.harness capacity --sizes 2,4,8,12,16,24

Per-thread working-set size grows across the HTM-BE read/write-set
bounds; the report shows the deterministic fallback ladder engaging
(commits per path, fallback-rate curve) and the exit status is
non-zero if the ladder fires at the wrong sizes or replays
differently.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import argparse
import sys


def _thread_list(text: str):
    return tuple(int(part) for part in text.split(","))


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        # The trace subcommand has its own positional grammar
        # (workload + system), so it dispatches before the artifact
        # parser sees the arguments.
        from repro.harness.trace import run_trace_command

        return run_trace_command(argv[1:])
    if argv and argv[0] == "metrics":
        # Same positional grammar as trace (workload + system), plus a
        # ``compare`` sub-mode for diffing two artifacts.
        from repro.harness.metrics import run_metrics_command

        return run_metrics_command(argv[1:])
    if argv and argv[0] == "sweep":
        # Likewise option-only grammar, dispatched before the artifact
        # parser.
        from repro.harness.sweep import run_sweep_command

        return run_sweep_command(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.harness.chaos import run_chaos_command

        return run_chaos_command(argv[1:])
    if argv and argv[0] == "adversary":
        from repro.harness.adversary import run_adversary_command

        return run_adversary_command(argv[1:])
    if argv and argv[0] == "degrade":
        from repro.harness.degrade import run_degrade_command

        return run_degrade_command(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.harness.analyze import run_analyze_command

        return run_analyze_command(argv[1:])
    if argv and argv[0] == "modelcheck":
        from repro.harness.modelcheck import run_modelcheck_command

        return run_modelcheck_command(argv[1:])
    if argv and argv[0] == "capacity":
        from repro.harness.capacity import run_capacity_command

        return run_capacity_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate FlexTM paper tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=["figure4", "figure5", "conflicts", "table2", "table4", "overflow", "all"],
    )
    parser.add_argument(
        "--cycles", type=int, default=150_000, help="simulated cycles per point"
    )
    parser.add_argument(
        "--threads",
        type=_thread_list,
        default=(1, 2, 4, 8, 16),
        help="comma-separated thread counts",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render figure series as ASCII charts",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="write one Chrome trace per measurement point into DIR "
        "(figure4 / figure5 / overflow)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        default=None,
        help="write one windowed-metrics JSON artifact per measurement "
        "point into DIR (figure4 / figure5 / overflow)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent measurement points "
        "(0 = one per CPU, 1 = serial; figure4 / conflicts / figure5 / "
        "overflow)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs >= 1 else None  # None = one per CPU

    wants = lambda name: args.artifact in (name, "all")

    if wants("table2"):
        from repro.harness.table2 import render_table2, run_table2

        print(render_table2(run_table2()))
        print()
    if wants("table4"):
        from repro.harness.table4 import render_table4, run_table4

        print(render_table4(run_table4()))
        print()
    if wants("figure4"):
        from repro.harness.figure4 import render_figure4, run_figure4

        results = run_figure4(
            thread_points=args.threads, cycle_limit=args.cycles, seed=args.seed,
            trace_out=args.trace_out, metrics_out=args.metrics_out, jobs=jobs,
        )
        print(render_figure4(results))
        if args.chart:
            from repro.harness.charts import chart_figure4

            for workload, points in results.items():
                print()
                print(chart_figure4(points, workload))
        print()
    if wants("conflicts"):
        from repro.harness.figure4 import render_conflict_table, run_conflict_table

        print(
            render_conflict_table(
                run_conflict_table(
                    cycle_limit=args.cycles, seed=args.seed, jobs=jobs
                )
            )
        )
        print()
    if wants("figure5"):
        from repro.harness.figure5 import (
            render_multiprogramming,
            render_policy,
            run_multiprogramming,
            run_policy_comparison,
        )

        policy_results = run_policy_comparison(
            thread_points=args.threads, cycle_limit=args.cycles, seed=args.seed,
            trace_out=args.trace_out, metrics_out=args.metrics_out, jobs=jobs,
        )
        print(render_policy(policy_results))
        if args.chart:
            from repro.harness.charts import chart_figure5

            for workload, points in policy_results.items():
                print()
                print(chart_figure5(points, workload))
        print()
        print(
            render_multiprogramming(
                run_multiprogramming(
                    cycle_limit=args.cycles, seed=args.seed, jobs=jobs
                )
            )
        )
        print()
    if wants("overflow"):
        from repro.harness.overflow import render_overflow, run_overflow_study

        print(
            render_overflow(
                run_overflow_study(
                    cycle_limit=args.cycles, trace_out=args.trace_out,
                    metrics_out=args.metrics_out, jobs=jobs,
                )
            )
        )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.exit(0)
