"""The ``modelcheck`` subcommand: exhaustive TMESI/CST exploration.

Examples::

    python -m repro.harness modelcheck --caches 3
    python -m repro.harness modelcheck --caches 2 --format json
    python -m repro.harness modelcheck --export-schedules /tmp/cex
    python -m repro.harness modelcheck --format sarif --out mc.sarif

Explores every reachable interleaving of the protocol tables in
``repro.coherence.spec`` for one line across N caches, checks the
SIM-M401..407 invariant catalog, reports dead spec cells, and — when a
violation is found — lowers its minimal counterexample onto the real
simulator through the adversary bridge so the finding is classified
``confirmed`` (the implementation shares the hole) or ``spec-only``.
Exit status is 1 on any violation or dead cell, 0 otherwise.  See
docs/ANALYSIS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.engine import AnalysisReport
from repro.analysis.modelcheck import check, findings_from, iter_model_rules
from repro.analysis.output import render_sarif
from repro.harness.analyze import _find_root


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness modelcheck",
        description="Exhaustively model-check the TMESI/CST protocol spec.",
    )
    parser.add_argument(
        "--caches",
        type=int,
        default=3,
        metavar="N",
        help="abstract caches sharing the line (default: 3)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="D",
        help="bound exploration depth (default: exhaustive)",
    )
    parser.add_argument(
        "--strategy",
        choices=["bfs", "dfs"],
        default="bfs",
        help="bfs guarantees minimal counterexamples (default)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--export-schedules",
        default=None,
        metavar="DIR",
        help="write each counterexample + its ScheduleScript into DIR "
        "as mc-sim-mNNN.json",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip replaying counterexamples on the real simulator",
    )
    parser.add_argument(
        "--replay-backend",
        default="FlexTM",
        metavar="NAME",
        help="backend counterexamples replay on (default: FlexTM)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-run summary line (text format)",
    )
    return parser


def run_modelcheck_command(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result = check(
            caches=args.caches, depth=args.depth, strategy=args.strategy
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    replays: List[Dict[str, object]] = []
    if result.violations and not args.no_replay:
        from repro.adversary.bridge import replay_violation

        for violation in result.violations:
            replays.append(
                replay_violation(violation, backend=args.replay_backend)
            )

    if args.export_schedules and result.violations:
        from repro.adversary.bridge import export_counterexample

        out_dir = Path(args.export_schedules)
        out_dir.mkdir(parents=True, exist_ok=True)
        for violation in result.violations:
            export_counterexample(
                violation, out_dir / f"mc-{violation.rule.lower()}.json"
            )

    root = _find_root(Path.cwd().resolve())
    if args.format == "json":
        doc = result.to_json()
        doc["replays"] = replays
        rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    elif args.format == "sarif":
        report = AnalysisReport(findings=findings_from(result, root))
        rendered = render_sarif(report, list(iter_model_rules()))
    else:
        rendered = _render_text(result, replays, quiet=args.quiet)

    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(
            f"modelcheck: wrote {args.format} report to {args.out} "
            f"({len(result.violations)} violation(s), "
            f"{len(result.dead_cells)} dead cell(s))"
        )
    else:
        sys.stdout.write(rendered)

    return 0 if result.ok else 1


def _render_text(result, replays: List[Dict[str, object]], quiet: bool) -> str:
    lines: List[str] = []
    if not quiet:
        lines.append(
            f"modelcheck: caches={result.caches} strategy={result.strategy} "
            f"states={result.states} transitions={result.transitions} "
            f"depth={result.depth}"
            + (" (truncated)" if result.truncated else "")
        )
    by_rule = {replay["rule"]: replay for replay in replays}
    for violation in result.violations:
        lines.append(f"{violation.rule}: {violation.message}")
        if violation.trace:
            lines.append(f"  trace: {violation.render_trace()}")
        replay = by_rule.get(violation.rule)
        if replay is not None:
            detail = f" ({replay['detail']})" if replay["detail"] else ""
            lines.append(
                f"  replay[{replay['backend']}]: {replay['classification']}"
                f" — verdict {replay['verdict']}{detail}"
            )
    for cell in result.dead_cells:
        lines.append(f"dead cell: {cell} is unreachable from init")
    if result.ok and not quiet:
        lines.append(
            "modelcheck: all invariants hold, every spec cell reachable"
        )
    return "\n".join(lines) + "\n"
