"""Figure 4: throughput and scalability (E1) + conflict table (E2).

Reproduces Figure 4(a)-(g): normalized throughput (transactions per
million cycles, normalized to 1-thread CGL) for 1..16 threads.

Workload-Set 1 (HashTable, RBTree, LFUCache, RandomGraph, Delaunay)
compares FlexTM / RTM-F / RSTM; Workload-Set 2 (Vacation low/high)
compares FlexTM / TL2.  All TM systems run eager conflict management
with the Polka manager, exactly as in the paper.

The companion conflict table reports, per committed transaction, the
number of distinct processors named by the W-R/W-W CSTs (median and
maximum at 8 and 16 threads).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.descriptor import ConflictMode
from repro.harness.parallel import PointSpec, run_points, unwrap
from repro.harness.report import format_series, format_table
from repro.harness.runner import ExperimentConfig
from repro.sim.stats import Histogram

WS1 = ["HashTable", "RBTree", "LFUCache", "RandomGraph", "Delaunay"]
WS2 = ["Vacation-Low", "Vacation-High"]
ALL_WORKLOADS = WS1 + WS2

DEFAULT_THREAD_POINTS = (1, 2, 4, 8, 16)


def systems_for(workload: str) -> List[str]:
    """WS1 compares against RSTM; WS2 against TL2 (Table 3b)."""
    if workload in WS2:
        return ["CGL", "FlexTM", "TL2"]
    return ["CGL", "FlexTM", "RTM-F", "RSTM"]


@dataclasses.dataclass
class Figure4Point:
    workload: str
    system: str
    threads: int
    throughput: float
    normalized: float
    commits: int
    aborts: int


def run_figure4(
    workloads: Sequence[str] = ALL_WORKLOADS,
    thread_points: Sequence[int] = DEFAULT_THREAD_POINTS,
    cycle_limit: int = 0,
    seed: int = 42,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    jobs: int = 1,
) -> Dict[str, List[Figure4Point]]:
    """Run the full Figure 4 sweep; returns points grouped by workload.

    ``trace_out`` names a directory that receives one Chrome trace per
    measurement point (sparse sampling, coherence events off);
    ``metrics_out`` likewise receives one windowed-metrics JSON
    artifact per point.  Both are written by whichever worker ran the
    point.  ``jobs > 1`` fans the points (baselines included) out
    across processes — output is bit-identical to the serial run.
    """
    specs: List[PointSpec] = []
    for workload in workloads:
        specs.append(
            PointSpec(
                config=ExperimentConfig(
                    workload=workload, system="CGL", threads=1,
                    cycle_limit=cycle_limit, seed=seed,
                ),
                label=f"figure4:{workload}:baseline",
            )
        )
    for workload in workloads:
        for system in systems_for(workload):
            for threads in thread_points:
                specs.append(
                    PointSpec(
                        config=ExperimentConfig(
                            workload=workload,
                            system=system,
                            threads=threads,
                            mode=ConflictMode.EAGER,
                            cycle_limit=cycle_limit,
                            seed=seed,
                        ),
                        label=f"figure4:{workload}:{system}:{threads}t",
                        trace_dir=trace_out,
                        trace_name=f"figure4_{workload}_{system}_{threads}t",
                        metrics_dir=metrics_out,
                        metrics_name=f"figure4_{workload}_{system}_{threads}t",
                    )
                )
    outcomes = iter(run_points(specs, jobs=jobs))
    baselines = {
        workload: unwrap(next(outcomes)).throughput or 1.0
        for workload in workloads
    }
    results: Dict[str, List[Figure4Point]] = {}
    for workload in workloads:
        base_tput = baselines[workload]
        points: List[Figure4Point] = []
        for system in systems_for(workload):
            for threads in thread_points:
                result = unwrap(next(outcomes))
                points.append(
                    Figure4Point(
                        workload=workload,
                        system=system,
                        threads=threads,
                        throughput=result.throughput,
                        normalized=result.throughput / base_tput,
                        commits=result.commits,
                        aborts=result.aborts,
                    )
                )
        results[workload] = points
    return results


def run_conflict_table(
    workloads: Sequence[str] = ALL_WORKLOADS,
    thread_points: Sequence[int] = (8, 16),
    cycle_limit: int = 0,
    seed: int = 42,
    jobs: int = 1,
) -> Dict[str, Dict[int, Dict[str, int]]]:
    """The 'Conflicting Transactions' table accompanying Figure 4."""
    specs = [
        PointSpec(
            config=ExperimentConfig(
                workload=workload,
                system="FlexTM",
                threads=threads,
                mode=ConflictMode.EAGER,
                cycle_limit=cycle_limit,
                seed=seed,
            ),
            label=f"conflicts:{workload}:{threads}t",
        )
        for workload in workloads
        for threads in thread_points
    ]
    outcomes = iter(run_points(specs, jobs=jobs))
    table: Dict[str, Dict[int, Dict[str, int]]] = {}
    for workload in workloads:
        table[workload] = {}
        for threads in thread_points:
            result = unwrap(next(outcomes))
            histogram = Histogram("degrees")
            for sample in result.conflict_degrees:
                histogram.record(sample)
            table[workload][threads] = {
                "median": histogram.median,
                "max": histogram.maximum,
            }
    return table


def render_figure4(results: Dict[str, List[Figure4Point]]) -> str:
    """Figure 4 as text: one series line per (workload, system)."""
    lines = ["Figure 4: normalized throughput (x = threads, y = vs 1-thread CGL)"]
    for workload, points in results.items():
        lines.append(f"-- {workload} --")
        by_system: Dict[str, List] = {}
        for point in points:
            by_system.setdefault(point.system, []).append((point.threads, point.normalized))
        for system, series in by_system.items():
            lines.append(format_series(f"  {system}", series))
    return "\n".join(lines)


def render_conflict_table(table: Dict[str, Dict[int, Dict[str, int]]]) -> str:
    rows = []
    for workload, per_threads in table.items():
        row = [workload]
        for threads in sorted(per_threads):
            row.append(per_threads[threads]["median"])
            row.append(per_threads[threads]["max"])
        rows.append(row)
    threads_sorted = sorted(next(iter(table.values()))) if table else []
    headers = ["Workload"]
    for threads in threads_sorted:
        headers += [f"{threads}T Md", f"{threads}T Mx"]
    return format_table(headers, rows, title="Conflicting transactions (CST degree)")
