"""Pathology analysis (Bobba et al. taxonomy, cited in Section 7.3).

The paper diagnoses RandomGraph's eager-mode collapse as FriendlyFire,
FutileStall and DuellingUpgrade.  This module post-processes a run's
statistics and thread records into pathology indicators, so harnesses
and users can *explain* a bad curve, not just observe it.

Indicators (heuristic, computed from aggregate counters):

* **FriendlyFire** — transactions repeatedly abort each other without
  anyone committing: high aborts-per-commit with a high fraction of
  wounds landing on transactions that had themselves wounded someone.
  We approximate with the aborts/commits ratio.
* **FutileStall** — cycles spent stalled behind transactions that
  eventually abort: estimated from eager-wait work relative to commits.
* **DuellingUpgrade** — both parties read a line then try to upgrade:
  visible as W-R conflicts that convert into symmetric W-W conflicts.
  Approximated by the ratio of Exposed-Read to Threatened responses.
* **Convoying** — runnable transactions queuing behind a descheduled
  one: summary-signature traps per commit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.runtime.scheduler import RunResult


@dataclasses.dataclass
class PathologyReport:
    """Heuristic pathology indicators for one run."""

    aborts_per_commit: float
    friendly_fire_risk: str
    exposed_read_fraction: float
    duelling_upgrade_risk: str
    summary_traps_per_commit: float
    convoying_risk: str

    def worst(self) -> str:
        """Name of the most pronounced pathology ('none' if healthy)."""
        candidates = []
        if self.friendly_fire_risk == "high":
            candidates.append(("FriendlyFire", self.aborts_per_commit))
        if self.duelling_upgrade_risk == "high":
            candidates.append(("DuellingUpgrade", self.exposed_read_fraction))
        if self.convoying_risk == "high":
            candidates.append(("Convoying", self.summary_traps_per_commit))
        if not candidates:
            return "none"
        return max(candidates, key=lambda item: item[1])[0]


def _grade(value: float, low: float, high: float) -> str:
    if value >= high:
        return "high"
    if value >= low:
        return "moderate"
    return "low"


def analyze(result: RunResult) -> PathologyReport:
    """Classify a run's contention behaviour."""
    commits = max(1, result.commits)
    stats: Dict[str, int] = result.stats
    aborts_per_commit = result.aborts / commits
    threatened = stats.get("cst.threatened_responses", 0)
    exposed = stats.get("cst.exposed_read_responses", 0)
    conflict_responses = threatened + exposed
    exposed_fraction = exposed / conflict_responses if conflict_responses else 0.0
    traps_per_commit = stats.get("summary.traps", 0) / commits
    return PathologyReport(
        aborts_per_commit=aborts_per_commit,
        friendly_fire_risk=_grade(aborts_per_commit, 0.5, 2.0),
        exposed_read_fraction=exposed_fraction,
        duelling_upgrade_risk=_grade(exposed_fraction, 0.25, 0.5),
        summary_traps_per_commit=traps_per_commit,
        convoying_risk=_grade(traps_per_commit, 0.1, 1.0),
    )


def render(report: PathologyReport) -> str:
    return (
        f"aborts/commit={report.aborts_per_commit:.2f} "
        f"(FriendlyFire: {report.friendly_fire_risk})  "
        f"exposed-read-fraction={report.exposed_read_fraction:.2f} "
        f"(DuellingUpgrade: {report.duelling_upgrade_risk})  "
        f"summary-traps/commit={report.summary_traps_per_commit:.2f} "
        f"(Convoying: {report.convoying_risk})  "
        f"worst={report.worst()}"
    )
