"""Generic experiment runner.

One call builds a fresh machine, a TM system, a workload, and the
threads, runs for a cycle budget, and returns the
:class:`~repro.runtime.scheduler.RunResult`.  Every harness and
benchmark goes through here so configurations stay comparable.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Optional

from repro.chaos import ChaosEngine, ChaosSpec, InvariantChecker, LivelockWatchdog, WatchdogSpec
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.obs.tracer import Tracer
from repro.params import DEFAULT_PARAMS, SystemParams
from repro.resilience import DegradeSpec, ResilienceController
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import RunResult, Scheduler
from repro.runtime.txthread import TxThread
from repro.stm.cgl import CglRuntime
from repro.stm.htmbe import HtmBestEffortRuntime
from repro.stm.logtmse import LogTmSeRuntime
from repro.stm.rstm import RstmRuntime
from repro.stm.rtmf import RtmfRuntime
from repro.stm.tl2 import Tl2Runtime
from repro.workloads import WORKLOADS
from repro.workloads.prime import PrimeWorkload


def _flextm(machine: FlexTMMachine, mode: ConflictMode) -> FlexTMRuntime:
    return FlexTMRuntime(machine, mode=mode)


SYSTEMS: Dict[str, Callable] = {
    "CGL": lambda machine, mode: CglRuntime(machine),
    "FlexTM": _flextm,
    "RTM-F": lambda machine, mode: RtmfRuntime(machine, mode=mode),
    "RSTM": lambda machine, mode: RstmRuntime(machine),
    "TL2": lambda machine, mode: Tl2Runtime(machine),
    "LogTM-SE": lambda machine, mode: LogTmSeRuntime(machine),
    "HTM-BE": lambda machine, mode: HtmBestEffortRuntime(machine),
}

#: One-line descriptions for ``--list-backends`` on the harness CLIs.
BACKEND_SUMMARIES: Dict[str, str] = {
    "CGL": "single coarse-grain lock (normalization baseline)",
    "FlexTM": "the paper's decoupled hardware TM (signatures + CSTs)",
    "RTM-F": "hardware-accelerated STM (AOU + PDI, per-access metadata)",
    "RSTM": "software TM, invisible readers with self-validation",
    "TL2": "software TM, global version clock + commit-time locking",
    "LogTM-SE": "log-based hardware TM, eager versioning, stall-on-conflict",
    "HTM-BE": "best-effort HTM, bounded sets, HTM->SW->irrevocable fallback",
}

#: Default cycle budget per run.  REPRO_CYCLES overrides it, but the
#: environment is consulted when a config is *resolved*, not at import
#: time — ``os.environ`` changes (tests, long-running drivers) take
#: effect without reimporting this module.
DEFAULT_CYCLE_LIMIT = 400_000


def default_cycle_limit() -> int:
    """The cycle budget used when a config does not pin one."""
    override = os.environ.get("REPRO_CYCLES")
    if override:
        try:
            return int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_CYCLES must be an integer, got {override!r}"
            ) from None
    return DEFAULT_CYCLE_LIMIT


@dataclasses.dataclass
class ExperimentConfig:
    """One (workload, system, threads) measurement point."""

    workload: str
    system: str
    threads: int
    mode: ConflictMode = ConflictMode.EAGER
    cycle_limit: int = 0
    seed: int = 42
    params: Optional[SystemParams] = None
    #: Extra compute-bound background threads (Figure 5e/f).
    background_threads: int = 0
    #: Transactional threads yield the CPU after an abort (Fig. 5e/f).
    yield_on_abort: bool = False
    tmi_to_victim: bool = False
    #: Restrict the run to the first N processors (oversubscription
    #: experiments); None uses every core.
    processors: Optional[int] = None
    #: Scheduling quantum in cycles (None = default policy).
    quantum: Optional[int] = None
    #: Observability: attach an EventTracer to record this run.  The
    #: default (None) installs the zero-overhead NullTracer.
    tracer: Optional[Tracer] = None
    #: Robustness: seeded fault-injection schedule (None = no faults).
    chaos: Optional["ChaosSpec"] = None
    #: Robustness: assert protocol invariants during the run.
    invariants: bool = False
    #: Robustness: liveness watchdog parameters (None = no watchdog).
    watchdog: Optional["WatchdogSpec"] = None
    #: Resilience: degradation-ladder parameters (None = no controller;
    #: controller-off runs are bit-identical to pre-resilience builds).
    degrade: Optional["DegradeSpec"] = None
    #: Observability: attach a :class:`repro.obs.metrics.MetricsHub` to
    #: collect windowed series and histograms (None = no metrics;
    #: armed runs are bit-identical to unarmed runs).
    metrics: Optional[object] = None

    def resolved_cycle_limit(self) -> int:
        return self.cycle_limit or default_cycle_limit()


def run_experiment(config: ExperimentConfig) -> RunResult:
    """Build everything fresh and run one measurement point."""
    if config.workload not in WORKLOADS:
        raise KeyError(f"unknown workload {config.workload!r}; have {sorted(WORKLOADS)}")
    if config.system not in SYSTEMS:
        raise KeyError(f"unknown system {config.system!r}; have {sorted(SYSTEMS)}")
    params = config.params or DEFAULT_PARAMS
    machine = FlexTMMachine(params, tmi_to_victim=config.tmi_to_victim)
    if config.tracer is not None:
        machine.set_tracer(config.tracer)
    if config.chaos is not None:
        machine.set_chaos(ChaosEngine(config.chaos, stats=machine.stats))
    if config.invariants:
        machine.set_invariants(InvariantChecker())
    if config.metrics is not None:
        machine.set_metrics(config.metrics)
    controller = None
    if config.degrade is not None:
        controller = ResilienceController(config.degrade)
        machine.set_resilience(controller)
    backend = SYSTEMS[config.system](machine, config.mode)
    if controller is not None:
        controller.bind_manager(getattr(backend, "manager", None))
    workload = WORKLOADS[config.workload](machine, seed=config.seed)
    abort_prime = None
    if config.yield_on_abort:
        abort_prime = PrimeWorkload(machine, seed=config.seed + 2)
    threads: List[TxThread] = [
        TxThread(
            thread_id,
            backend,
            workload.items(thread_id),
            abort_work=abort_prime.abort_work(thread_id) if abort_prime else None,
        )
        for thread_id in range(config.threads)
    ]
    if config.background_threads:
        prime = PrimeWorkload(machine, seed=config.seed + 1)
        base = config.threads
        threads.extend(
            TxThread(base + offset, backend, prime.items(base + offset))
            for offset in range(config.background_threads)
        )
    processor_list = (
        list(range(config.processors)) if config.processors is not None else None
    )
    watchdog = LivelockWatchdog(config.watchdog) if config.watchdog is not None else None
    scheduler = Scheduler(
        machine, threads, quantum=config.quantum, processors=processor_list,
        watchdog=watchdog,
    )
    return scheduler.run(cycle_limit=config.resolved_cycle_limit())


def normalized_throughput(result: RunResult, baseline: RunResult) -> float:
    """Throughput relative to a baseline run (Figure 4/5's y-axis)."""
    if baseline.throughput == 0:
        return 0.0
    return result.throughput / baseline.throughput


def cgl_baseline(workload: str, cycle_limit: int = 0, seed: int = 42,
                 params: Optional[SystemParams] = None) -> RunResult:
    """The 1-thread coarse-grain-lock run everything normalizes to."""
    return run_experiment(
        ExperimentConfig(
            workload=workload,
            system="CGL",
            threads=1,
            cycle_limit=cycle_limit,
            seed=seed,
            params=params,
        )
    )
