"""Table 4(b) (E6): FlexWatcher vs Discover slowdowns on BugBench."""

from __future__ import annotations

from typing import Dict

from repro.harness.report import format_table
from repro.tools.bugbench import BUGBENCH, run_program
from repro.tools.discover import DiscoverInstrumenter

#: The paper's published Table 4(b) values.
PUBLISHED_TABLE4 = {
    "BC-BO": {"flexwatcher": 1.50, "discover": 75.0},
    "Gzip-BO": {"flexwatcher": 1.15, "discover": 17.0},
    "Gzip-IV": {"flexwatcher": 1.05, "discover": None},
    "Man": {"flexwatcher": 1.80, "discover": 65.0},
    "Squid": {"flexwatcher": 2.50, "discover": None},
}


def run_table4(seed: int = 7) -> Dict[str, dict]:
    discover = DiscoverInstrumenter()
    out: Dict[str, dict] = {}
    for name, program in BUGBENCH.items():
        report = run_program(program, seed=seed)
        out[name] = {
            "flexwatcher": report.slowdown,
            "discover": discover.slowdown(program),
            "bugs_detected": report.bugs_detected,
            "alerts": report.alerts,
            "false_alerts": report.false_alerts,
            "published": PUBLISHED_TABLE4[name],
        }
    return out


def render_table4(results: Dict[str, dict]) -> str:
    headers = ["Program", "FxW (paper)", "Discover (paper)", "Bugs", "Alerts", "False"]
    rows = []
    for name, data in results.items():
        published = data["published"]
        discover = data["discover"]
        discover_text = f"{discover:.0f}x" if discover else "N/A"
        published_discover = (
            f"{published['discover']:.0f}x" if published["discover"] else "N/A"
        )
        rows.append(
            [
                name,
                f"{data['flexwatcher']:.2f}x ({published['flexwatcher']}x)",
                f"{discover_text} ({published_discover})",
                data["bugs_detected"],
                data["alerts"],
                data["false_alerts"],
            ]
        )
    return format_table(headers, rows, title="Table 4(b): FlexWatcher vs Discover")
