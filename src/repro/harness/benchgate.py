"""CI benchmark-regression gate over ``BENCH_sweep.json``.

Usage::

    python -m repro.harness.benchgate BENCH_sweep.json \
        --baseline benchmarks/baselines/BENCH_sweep_baseline.json \
        --max-regression 2.0

Exit status is non-zero when

* the document fails the ``repro.bench_sweep/v1`` schema check,
* any point errored (``num_errors > 0``), or
* ``total_wall_time_s`` exceeds ``--max-regression`` times the
  baseline's total.

The baseline is a committed BENCH_sweep.json from a known-good run of
the same fixed sweep.  Wall-clock comparisons across heterogeneous
hosts are inherently noisy, which is why the gate only fails on a
coarse (default 2x) blow-up — it catches "the sweep got pathologically
slower", not single-digit-percent drift.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.parallel import validate_bench_payload


def _load(path: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"benchgate: cannot read {path}: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.benchgate",
        description="Fail CI when a BENCH_sweep.json shows errors or a "
        "wall-time regression against a committed baseline.",
    )
    parser.add_argument("bench", help="BENCH_sweep.json produced by this run")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline BENCH_sweep.json to compare totals against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when total wall time exceeds baseline * this factor "
        "(default 2.0)",
    )
    args = parser.parse_args(argv)

    document = _load(args.bench)
    error = validate_bench_payload(document)
    if error is not None:
        print(f"benchgate: FAIL — schema: {error}")
        return 1

    failures = []
    if document["num_errors"]:
        bad = [point for point in document["points"] if not point["ok"]]
        for point in bad:
            print(
                f"benchgate: errored point {point['label'] or '?'}: "
                f"{point['status']} {point.get('error', '')}".rstrip()
            )
        failures.append(f"{document['num_errors']} errored point(s)")

    total = document["total_wall_time_s"]
    if args.baseline:
        baseline = _load(args.baseline)
        baseline_error = validate_bench_payload(baseline)
        if baseline_error is not None:
            print(f"benchgate: FAIL — baseline schema: {baseline_error}")
            return 1
        budget = baseline["total_wall_time_s"] * args.max_regression
        print(
            f"benchgate: total {total:.2f}s vs baseline "
            f"{baseline['total_wall_time_s']:.2f}s "
            f"(budget {budget:.2f}s at {args.max_regression:g}x)"
        )
        if total > budget:
            failures.append(
                f"wall time {total:.2f}s exceeds {args.max_regression:g}x "
                f"baseline ({budget:.2f}s)"
            )

    if failures:
        print(f"benchgate: FAIL — {'; '.join(failures)}")
        return 1
    print(
        f"benchgate: OK — {document['num_points']} points, 0 errors, "
        f"{total:.2f}s total, speedup "
        f"{document['speedup_vs_serial_estimate']:.2f}x vs serial estimate"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
