"""Seeded fault-matrix harness: ``python -m repro.harness chaos``.

Runs every TM backend under every fault profile with the chaos engine,
the invariant checker, the livelock watchdog, and the serializability
oracle all armed, then classifies each cell:

``clean``
    the profile's dice never fired (nothing injected).
``masked``
    faults were injected but the run is indistinguishable from the
    fault-free baseline (same commits and aborts, serializable,
    witness-replay-consistent final memory): pure latency.
``degraded``
    faults changed the numbers (extra aborts, watchdog escalations)
    but the committed history is still serializable and the final
    memory replays from the witness: graceful degradation.
``diagnosed``
    the run (or its oracle) raised a structured
    :class:`~repro.errors.ReproError` — an invariant violation or a
    :class:`~repro.verify.history.SerializabilityViolation` — naming
    the damage: the robustness layer caught the fault.
``wedged``
    the run hit its cycle budget without committing every
    transaction: a liveness failure.  **Test failure.**
``silent-corruption``
    the history passed the checker but the final memory does not
    equal a serial replay of the witness, or some other undiagnosed
    divergence: exactly the outcome this layer exists to prevent.
    **Test failure.**
``crash``
    a non-``ReproError`` escaped — a bug, not a diagnosis.
    **Test failure.**

Every cell is deterministic from ``(seed, backend, profile)``: per-cell
chaos seeds are mixed with :func:`zlib.crc32` (stable across processes,
unlike salted string hashes), thread bodies draw from
:class:`~repro.sim.rng.DeterministicRng`, and the scheduler is
timing-driven.  Re-running a failing cell with the same flags replays
it bit-identically.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import zlib
from typing import Dict, List, Optional, Sequence

from repro.chaos import ChaosEngine, ChaosSpec, InvariantChecker, LivelockWatchdog, WatchdogSpec
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import ReproError
from repro.harness.parallel import effective_jobs
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.sim.rng import DeterministicRng
from repro.verify.history import (
    RecordingBackend,
    SerializabilityViolation,
    check_serializable,
)

#: Classifications that fail the harness (exit status 1).
FAILING = ("crash", "wedged", "silent-corruption")

#: Fault profiles: one adversary per subsystem plus a combined storm.
#: Probabilities are tuned so a profile reliably injects on the default
#: workload size while the run still finishes well inside its budget.
FAULT_PROFILES: Dict[str, Dict[str, float]] = {
    "coherence": dict(coh_drop=0.05, coh_delay=0.05, coh_dup=0.03),
    "aou": dict(alert_drop=0.25, alert_spurious=0.01),
    "signature": dict(sig_false_positive=0.05, sig_false_negative=0.02),
    "overflow": dict(ot_walk_fail=0.30, l1_evict=0.02),
    "sched": dict(sched_preempt=0.005),
    "storm": dict(
        coh_drop=0.02, coh_delay=0.02, coh_dup=0.01,
        alert_drop=0.10, alert_spurious=0.005,
        sig_false_positive=0.02, sig_false_negative=0.01,
        ot_walk_fail=0.10, l1_evict=0.01, sched_preempt=0.002,
    ),
}

NUM_CELLS = 6
DEFAULT_THREADS = 4
DEFAULT_TXNS = 10
DEFAULT_CYCLE_LIMIT = 100_000_000


def profile_spec(profile: str, seed: int, backend: str) -> ChaosSpec:
    """The replayable ChaosSpec for one (seed, backend, profile) cell."""
    if profile not in FAULT_PROFILES:
        raise KeyError(f"unknown fault profile {profile!r}; have {sorted(FAULT_PROFILES)}")
    mixed = seed ^ zlib.crc32(f"{backend}:{profile}".encode())
    return ChaosSpec(seed=mixed, **FAULT_PROFILES[profile])


@dataclasses.dataclass
class CellResult:
    """One (backend, profile) cell of the fault matrix."""

    backend: str
    profile: str
    classification: str
    injected: Dict[str, int]
    commits: int = 0
    aborts: int = 0
    cycles: int = 0
    aborts_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    watchdog: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Per-rung escalation counters from the run's RunResult (watchdog
    #: ladder always; degradation ladder when a controller was armed).
    escalations: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Windowed commit/abort series from the metrics hub, keyed by
    #: series name (see repro.obs.metrics.TimeSeries.to_dict).
    series: Dict[str, object] = dataclasses.field(default_factory=dict)
    invariant_checks: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.classification not in FAILING

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _bodies(cells, rng, count, unique):
    """Contended random read/write transactions with globally unique
    write values, so the oracle's reads-from attribution is exact."""

    def make(reads, writes):
        def body(ctx):
            for address in reads:
                yield from ctx.read(address)
            yield from ctx.work(10)
            for address in writes:
                yield from ctx.write(address, next(unique))

        return body

    for _ in range(count):
        reads = rng.sample(cells, rng.randint(1, 3))
        writes = rng.sample(cells, rng.randint(1, 2))
        yield WorkItem(make(tuple(reads), tuple(writes)))


def _run_cell(
    backend_name: str,
    seed: int,
    spec: Optional[ChaosSpec],
    threads: int,
    txns: int,
    cycle_limit: int,
) -> Dict[str, object]:
    """One instrumented run; returns raw observations (no classification).

    Keys: ``commits``/``aborts``/``cycles``/``aborts_by_kind``,
    ``injected`` (site.kind -> count), ``watchdog`` telemetry,
    ``serializable``/``memory_ok`` oracle verdicts, and ``error`` /
    ``error_kind`` when something was raised (``repro`` for structured
    ReproErrors, ``crash`` for everything else).
    """
    from repro.harness.runner import SYSTEMS
    from repro.obs.metrics import MetricsHub

    machine = FlexTMMachine(small_test_params(threads))
    hub = MetricsHub()
    machine.set_metrics(hub)
    engine = None
    if spec is not None:
        engine = ChaosEngine(spec, stats=machine.stats)
        machine.set_chaos(engine)
        machine.set_invariants(InvariantChecker())
    backend = RecordingBackend(SYSTEMS[backend_name](machine, ConflictMode.EAGER))
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(NUM_CELLS)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        backend.recorder.note_initial(cell, index)
    unique = itertools.count(1000)
    tx_threads = [
        TxThread(i, backend, _bodies(cells, DeterministicRng(seed * 7919 + i), txns, unique))
        for i in range(threads)
    ]
    watchdog = LivelockWatchdog(WatchdogSpec()) if spec is not None else None
    out: Dict[str, object] = {
        "commits": 0,
        "aborts": 0,
        "cycles": 0,
        "aborts_by_kind": {},
        "escalations": {},
        "series": {},
        "injected": {},
        "watchdog": {},
        "invariant_checks": 0,
        "serializable": False,
        "memory_ok": False,
        "error": "",
        "error_kind": "",
    }
    try:
        result = Scheduler(machine, tx_threads, watchdog=watchdog).run(
            cycle_limit=cycle_limit
        )
        out["commits"] = result.commits
        out["aborts"] = result.aborts
        out["cycles"] = result.cycles
        out["aborts_by_kind"] = dict(result.aborts_by_kind)
        out["escalations"] = dict(result.escalations)
        out["series"] = {
            name: hub.series(name).to_dict()
            for name in ("tx.commits", "tx.aborts")
        }
    except ReproError as error:
        out["error"] = f"{type(error).__name__}: {error}"
        out["error_kind"] = "repro"
    except Exception as error:  # noqa: BLE001 — a crash IS the finding
        out["error"] = f"{type(error).__name__}: {error}"
        out["error_kind"] = "crash"
    if engine is not None:
        out["injected"] = dict(engine.injected)
    if watchdog is not None:
        out["watchdog"] = {
            "escalations": watchdog.escalations,
            "forced_aborts": watchdog.forced_aborts,
            "recoveries": watchdog.recoveries,
        }
    if machine.invariants is not None:
        out["invariant_checks"] = (
            machine.invariants.inline_checks + machine.invariants.sweeps
        )
    if out["error_kind"]:
        return out
    # Oracle: the committed history must be conflict-serializable, and
    # (when every transaction committed) the final memory must equal a
    # serial replay of the witness order.
    try:
        witness = check_serializable(backend.recorder)
        out["serializable"] = True
    except SerializabilityViolation as error:
        out["error"] = f"SerializabilityViolation: {error}"
        out["error_kind"] = "repro"
        return out
    if out["commits"] == threads * txns:
        replay = dict(backend.recorder.initial_values)
        for txn in witness:
            replay.update(txn.writes)
        out["memory_ok"] = all(
            machine.memory.read(cell) == replay[cell] for cell in cells
        )
    return out


def _classify(run: Dict[str, object], baseline: Dict[str, object],
              expected_commits: int) -> CellResult:
    """Apply the classification ladder to one faulted run."""
    injected = dict(run["injected"])
    total = sum(injected.values())
    classification = "degraded"
    detail = ""
    if run["error_kind"] == "crash":
        classification, detail = "crash", str(run["error"])
    elif run["error_kind"] == "repro":
        classification, detail = "diagnosed", str(run["error"])
    elif run["commits"] < expected_commits:
        classification = "wedged"
        detail = f"{run['commits']}/{expected_commits} commits at cycle budget"
    elif not run["memory_ok"]:
        classification = "silent-corruption"
        detail = "final memory diverges from serial witness replay"
    elif total == 0:
        classification = "clean"
    elif (run["commits"], run["aborts"]) == (baseline["commits"], baseline["aborts"]):
        classification = "masked"
    return CellResult(
        backend="", profile="",
        classification=classification,
        injected=injected,
        commits=int(run["commits"]),
        aborts=int(run["aborts"]),
        cycles=int(run["cycles"]),
        aborts_by_kind=dict(run["aborts_by_kind"]),
        watchdog=dict(run["watchdog"]),
        escalations=dict(run["escalations"]),
        series=dict(run["series"]),
        invariant_checks=int(run["invariant_checks"]),
        detail=detail,
    )


def run_backend_matrix(
    backend_name: str,
    profiles: Sequence[str],
    seed: int,
    threads: int = DEFAULT_THREADS,
    txns: int = DEFAULT_TXNS,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
) -> List[CellResult]:
    """Baseline one backend, then run and classify every fault profile."""
    expected = threads * txns
    baseline = _run_cell(backend_name, seed, None, threads, txns, cycle_limit)
    rows: List[CellResult] = []
    if baseline["error_kind"] or baseline["commits"] < expected or not baseline["memory_ok"]:
        detail = str(baseline["error"]) or (
            f"{baseline['commits']}/{expected} commits"
            if baseline["commits"] < expected
            else "final memory diverges from serial witness replay"
        )
        rows.append(
            CellResult(
                backend=backend_name, profile="baseline",
                classification="crash" if baseline["error_kind"] == "crash" else "silent-corruption",
                injected={}, commits=int(baseline["commits"]),
                aborts=int(baseline["aborts"]), cycles=int(baseline["cycles"]),
                detail=f"fault-free baseline failed: {detail}",
            )
        )
        return rows
    for profile in profiles:
        spec = profile_spec(profile, seed, backend_name)
        run = _run_cell(backend_name, seed, spec, threads, txns, cycle_limit)
        cell = _classify(run, baseline, expected)
        cell.backend = backend_name
        cell.profile = profile
        rows.append(cell)
    return rows


def _worker(payload) -> List[CellResult]:
    backend_name, profiles, seed, threads, txns, cycle_limit = payload
    return run_backend_matrix(backend_name, profiles, seed, threads, txns, cycle_limit)


def run_chaos_matrix(
    backends: Sequence[str],
    profiles: Sequence[str],
    seed: int,
    jobs: int = 1,
    threads: int = DEFAULT_THREADS,
    txns: int = DEFAULT_TXNS,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    progress=None,
) -> List[CellResult]:
    """The full matrix; one worker unit per backend, rows in input order."""
    payloads = [
        (name, tuple(profiles), seed, threads, txns, cycle_limit)
        for name in backends
    ]
    jobs = min(max(1, jobs), len(payloads))
    if jobs == 1:
        groups = []
        for payload in payloads:
            groups.append(_worker(payload))
            if progress is not None:
                progress(len(groups), len(payloads))
    else:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            groups = []
            for group in pool.map(_worker, payloads):
                groups.append(group)
                if progress is not None:
                    progress(len(groups), len(payloads))
    return [cell for group in groups for cell in group]


# -- CLI ----------------------------------------------------------------------


def _comma_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def resolve_backends(names: Sequence[str]) -> List[str]:
    """Case-insensitively canonicalize backend names (SystemExit on junk)."""
    from repro.harness.runner import SYSTEMS

    lowered = {key.lower(): key for key in SYSTEMS}
    backends = []
    for name in names:
        key = lowered.get(name.lower())
        if key is None:
            raise SystemExit(
                f"unknown backend {name!r}; choose from {', '.join(sorted(SYSTEMS))}"
            )
        backends.append(key)
    if not backends:
        # An empty filter (e.g. ``--backends ""``) must not silently
        # produce a zero-cell matrix that trivially "passes".
        raise SystemExit(
            f"no backends selected; choose from {', '.join(sorted(SYSTEMS))}"
        )
    return backends


def render_backend_list() -> str:
    """``--list-backends`` text shared by the chaos/degrade/adversary CLIs."""
    from repro.harness.runner import BACKEND_SUMMARIES, SYSTEMS

    lines = ["backends:"]
    for name in SYSTEMS:
        lines.append(f"  {name:<10} {BACKEND_SUMMARIES.get(name, '')}")
    return "\n".join(lines) + "\n"


def resolve_profiles(names: Sequence[str]) -> List[str]:
    """Validate fault-profile names (SystemExit on junk)."""
    profiles = []
    for name in names:
        if name not in FAULT_PROFILES:
            raise SystemExit(
                f"unknown profile {name!r}; choose from {', '.join(FAULT_PROFILES)}"
            )
        profiles.append(name)
    return profiles


def render_matrix(rows: List[CellResult]) -> str:
    """Human-readable report table."""
    lines = []
    header = f"{'backend':<10} {'profile':<10} {'class':<17} {'inj':>5} {'commits':>7} {'aborts':>7}  detail"
    lines.append(header)
    lines.append("-" * len(header))
    for cell in rows:
        marker = "" if cell.ok else "  <-- FAIL"
        lines.append(
            f"{cell.backend:<10} {cell.profile:<10} {cell.classification:<17} "
            f"{sum(cell.injected.values()):>5} {cell.commits:>7} {cell.aborts:>7}  "
            f"{cell.detail}{marker}"
        )
    return "\n".join(lines) + "\n"


def run_chaos_command(argv=None) -> int:
    """``python -m repro.harness chaos`` — run the seeded fault matrix."""
    from repro.harness.runner import SYSTEMS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness chaos",
        description="Run every TM backend under seeded fault injection "
        "with invariants, watchdog, and serializability oracle armed; "
        "fail on any crash, wedge, or silent corruption.",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for the fault matrix (default 1)")
    parser.add_argument("--backends", default=",".join(SYSTEMS),
                        help="comma-separated backend names (default: all)")
    parser.add_argument("--backend", action="append", default=None,
                        metavar="NAME", dest="backend",
                        help="run a single backend (repeatable; overrides "
                        "--backends)")
    parser.add_argument("--profiles", default=",".join(FAULT_PROFILES),
                        help="comma-separated fault profiles (default: all)")
    parser.add_argument("--profile", action="append", default=None,
                        metavar="NAME", dest="profile",
                        help="run a single fault profile (repeatable; "
                        "overrides --profiles)")
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS,
                        help="transactional threads per run")
    parser.add_argument("--txns", type=int, default=DEFAULT_TXNS,
                        help="transactions per thread per run")
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLE_LIMIT,
                        help="cycle budget per run (wedge detector)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU; 1 = serial)")
    parser.add_argument("--report", metavar="FILE",
                        help="write the JSON fault-matrix report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress on stderr")
    parser.add_argument("--list-profiles", action="store_true",
                        help="list the fault profiles and exit")
    parser.add_argument("--list-backends", action="store_true",
                        help="list the TM backends and exit")
    args = parser.parse_args(argv)

    if args.list_profiles:
        sys.stdout.write("fault profiles:\n")
        for name, knobs in FAULT_PROFILES.items():
            settings = ", ".join(f"{k}={v}" for k, v in sorted(knobs.items()))
            sys.stdout.write(f"  {name:<10} {settings}\n")
        return 0
    if args.list_backends:
        sys.stdout.write(render_backend_list())
        return 0

    backends = resolve_backends(args.backend or _comma_list(args.backends))
    profiles = resolve_profiles(args.profile or _comma_list(args.profiles))

    jobs = min(effective_jobs(args.jobs), len(backends))
    if not args.quiet:
        sys.stderr.write(
            f"chaos: seed {args.seed}, {len(backends)} backend(s) x "
            f"{len(profiles)} profile(s), {jobs} worker(s)\n"
        )
    progress = None
    if not args.quiet:
        def progress(done, total):
            sys.stderr.write(f"chaos: {done}/{total} backends done\n")

    rows = run_chaos_matrix(
        backends, profiles, args.seed, jobs=jobs, threads=args.threads,
        txns=args.txns, cycle_limit=args.cycles, progress=progress,
    )
    sys.stdout.write(render_matrix(rows))
    counts: Dict[str, int] = {}
    for cell in rows:
        counts[cell.classification] = counts.get(cell.classification, 0) + 1
    failures = [cell for cell in rows if not cell.ok]
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    sys.stdout.write(f"\nchaos: {len(rows)} cells: {summary}\n")
    if args.report:
        document = {
            "seed": args.seed,
            "backends": backends,
            "profiles": profiles,
            "threads": args.threads,
            "txns": args.txns,
            "cycle_limit": args.cycles,
            "counts": counts,
            "ok": not failures,
            "cells": [cell.to_json() for cell in rows],
        }
        with open(args.report, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failures:
        sys.stdout.write(
            "chaos: FAIL — "
            + "; ".join(f"{c.backend}/{c.profile}: {c.classification}" for c in failures)
            + "\n"
        )
        return 1
    sys.stdout.write("chaos: every injected fault was masked, degraded "
                     "gracefully, or diagnosed\n")
    return 0
