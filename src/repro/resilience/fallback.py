"""The best-effort-HTM fallback policy engine.

Commercial best-effort HTM (Intel TSX, POWER8 TM, the FORTH
limited-set design in PAPERS.md) guarantees nothing: any attempt may
abort on capacity, on a conflict, or spuriously on a context switch,
so every hybrid runtime pairs the hardware path with a software
fallback ladder.  :class:`FallbackPolicy` is that ladder for
:class:`repro.stm.htmbe.HtmBestEffortRuntime`:

* per-thread consecutive-abort streaks select the execution path —
  ``htm`` (bounded hardware sets, near-zero bookkeeping) for the first
  ``htm_retries`` attempts, then ``sw`` (unbounded, pays per-access
  bookkeeping) for ``sw_retries`` more, then the ``irrevocable``
  last resort behind PR 4's FIFO :class:`IrrevocabilityToken`;
* capacity aborts fast-forward the streak past the remaining HTM
  budget — retrying a transaction that cannot fit in the hardware sets
  only wastes cycles;
* retry delay is a deterministic bounded exponential
  (``min(cap, base * growth**(n-1))`` cycles after the *n*-th
  consecutive abort) — no RNG, so runs replay bit-identically;
* while the token is held the system is in serial mode
  (``serial_active``): peers were drained with wound kind
  ``"fallback"`` and admission of new HTM commits is forbidden — the
  HTM/SW mutual-exclusion invariant ``htm-sw-mutex`` checked by
  :class:`repro.chaos.invariants.InvariantChecker`.

The policy is pure software state: no RNG, no clock reads.  All
telemetry keys are ``fallback_``-prefixed so they merge into
``RunResult.escalations`` without colliding with the resilience
controller's ladder counters (which already own ``commits_irrevocable``
and friends).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.resilience.irrevocable import IrrevocabilityToken

#: Execution paths, in escalation order.
HTM_PATH = "htm"
SW_PATH = "sw"
IRREVOCABLE_PATH = "irrevocable"
PATHS = (HTM_PATH, SW_PATH, IRREVOCABLE_PATH)


@dataclasses.dataclass(frozen=True)
class FallbackSpec:
    """Retry budgets and backoff shape for the fallback ladder.

    Attributes:
        htm_retries: consecutive aborts tolerated on the hardware path
            before escalating to the software slow path.
        sw_retries: further aborts tolerated on the software path
            before requesting the irrevocability token.
        backoff_base: cycles of delay after the first abort.
        backoff_growth: multiplicative growth per further abort.
        backoff_cap: upper bound on any single delay.
        lock_poll_cycles: cycles charged per fallback-lock poll while a
            thread spins on ``token.busy`` or awaits its FIFO grant.
    """

    htm_retries: int = 3
    sw_retries: int = 4
    backoff_base: int = 32
    backoff_growth: int = 2
    backoff_cap: int = 2048
    lock_poll_cycles: int = 40

    def __post_init__(self) -> None:
        for name in ("htm_retries", "sw_retries"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        for name in ("backoff_base", "backoff_growth", "backoff_cap",
                     "lock_poll_cycles"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ConfigurationError(
                "backoff_cap must be >= backoff_base, got "
                f"{self.backoff_cap} < {self.backoff_base}"
            )


class FallbackPolicy:
    """Deterministic per-thread HTM→SW→irrevocable escalation ladder."""

    def __init__(self, spec: Optional[FallbackSpec] = None):
        self.spec = spec or FallbackSpec()
        #: The fallback lock: PR 4's FIFO-granted irrevocability token.
        self.token = IrrevocabilityToken()
        #: True while the token holder runs serially (peers drained).
        self.serial_active = False
        self._streak: Dict[int, int] = {}
        self._counters: Dict[str, int] = {
            "fallback_commits_htm": 0,
            "fallback_commits_sw": 0,
            "fallback_commits_irrevocable": 0,
            "fallback_grants": 0,
            "fallback_dooms": 0,
            "fallback_capacity_fastfails": 0,
            "fallback_peak_streak": 0,
        }
        # Set by the runtime (bind_runtime) so the invariant checker can
        # see in-flight attempts through ``machine.htm_fallback`` alone.
        self._runtime = None

    # -- runtime binding -------------------------------------------------

    def bind_runtime(self, runtime) -> None:
        """Attach the backend whose attempts this policy governs."""
        self._runtime = runtime

    def active_attempts(self) -> List[Tuple[int, str, bool, bool]]:
        """``(thread_id, path, committing, doomed)`` per in-flight attempt."""
        if self._runtime is None:
            return []
        return self._runtime.active_attempts()

    def token_holders(self) -> List[int]:
        return self.token.holders()

    # -- the ladder ------------------------------------------------------

    def streak(self, thread_id: int) -> int:
        """Consecutive aborts since this thread's last commit."""
        return self._streak.get(thread_id, 0)

    def path_for(self, thread_id: int) -> str:
        """Which path the next attempt takes (pure function of streak)."""
        streak = self.streak(thread_id)
        if streak < self.spec.htm_retries:
            return HTM_PATH
        if streak < self.spec.htm_retries + self.spec.sw_retries:
            return SW_PATH
        return IRREVOCABLE_PATH

    def backoff(self, aborts_in_a_row: int) -> int:
        """Cycles to stall before the next attempt (bounded exponential)."""
        if aborts_in_a_row <= 0:
            return 0
        spec = self.spec
        return min(
            spec.backoff_cap,
            spec.backoff_base * spec.backoff_growth ** (aborts_in_a_row - 1),
        )

    def note_abort(self, thread_id: int, kind: str) -> None:
        """Advance the streak after an abort attributed to ``kind``."""
        streak = self.streak(thread_id)
        if kind == "capacity" and streak < self.spec.htm_retries:
            # A transaction that cannot fit in the hardware sets will
            # never fit: burn the remaining HTM budget in one step.
            self._counters["fallback_capacity_fastfails"] += 1
            streak = self.spec.htm_retries
        else:
            streak += 1
        self._streak[thread_id] = streak
        if streak > self._counters["fallback_peak_streak"]:
            self._counters["fallback_peak_streak"] = streak

    def note_commit(self, thread_id: int, path: str) -> None:
        """Reset the streak; release the token after a serial commit."""
        self._streak.pop(thread_id, None)
        self._counters[f"fallback_commits_{path}"] += 1
        if path == IRREVOCABLE_PATH:
            self.serial_active = False
            self.token.release(thread_id)

    def note_grant(self) -> None:
        self._counters["fallback_grants"] += 1

    def note_doom(self) -> None:
        self._counters["fallback_dooms"] += 1

    # -- telemetry -------------------------------------------------------

    def escalation_counters(self) -> Dict[str, int]:
        """Non-zero ``fallback_*`` counters for ``RunResult.escalations``."""
        return {key: value for key, value in self._counters.items() if value}

    def __repr__(self) -> str:
        return (
            f"FallbackPolicy(streaks={self._streak}, "
            f"serial_active={self.serial_active}, token={self.token!r})"
        )
