"""Pressure sensors: the *detect* half of the detect->react loop.

Samples the decoupled hardware structures the controller can actually
relieve: Bloom-signature fill (a proxy for false-positive wounds —
rotate/widen the hash family), overflow-table occupancy and failed
walks (OT thrash — back off harder), and, via the controller's
bookkeeping, per-transaction consecutive-abort streaks and wasted
cycles (starvation — escalate toward irrevocability).

Sampling is purely observational: no RNG draws, no clock writes, no
cache traffic.  Readings land in ``resilience.*`` StatsRegistry
histograms (percent-scaled integers) so every run's pressure history is
inspectable post-hoc from ``RunResult.stats``.
"""

from __future__ import annotations

import dataclasses
from typing import List


@dataclasses.dataclass(frozen=True)
class PressureSample:
    """One processor's sensor readings at one sample point."""

    proc: int
    #: Worst per-register bit-fill fraction (Rsig vs Wsig), 0..1.
    sig_fill: float
    #: Worst estimated Bloom false-positive probability, 0..1.
    sig_fp: float
    #: Overflow-table entries currently held (0 when no OT allocated).
    ot_occupancy: int
    #: Failed OT walks so far (chaos-injected or geometry-induced).
    ot_failed_walks: int

    def hot(self, fill_threshold: float, fp_threshold: float) -> bool:
        """Is this core under sustained signature pressure?"""
        return self.sig_fill >= fill_threshold or self.sig_fp >= fp_threshold


def sample_machine(machine) -> List[PressureSample]:
    """Read every processor's sensors (observational only)."""
    samples = []
    for proc in machine.processors:
        fills = [proc.rsig.occupancy(), proc.wsig.occupancy()]
        fps = [
            proc.rsig.false_positive_estimate(),
            proc.wsig.false_positive_estimate(),
        ]
        samples.append(
            PressureSample(
                proc=proc.proc_id,
                sig_fill=max(fills),
                sig_fp=max(fps),
                ot_occupancy=proc.ot.count if proc.ot.active else 0,
                ot_failed_walks=proc.ot.failed_walks,
            )
        )
    return samples


def record_samples(stats, samples: List[PressureSample]) -> None:
    """Log one sweep of readings into ``resilience.*`` histograms."""
    fill = stats.histogram("resilience.sig_fill_pct")
    fp = stats.histogram("resilience.sig_fp_pct")
    occupancy = stats.histogram("resilience.ot_occupancy")
    for sample in samples:
        fill.record(int(sample.sig_fill * 100))
        fp.record(int(sample.sig_fp * 100))
        occupancy.record(sample.ot_occupancy)
