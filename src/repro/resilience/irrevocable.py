"""The single-token serial-irrevocable mode.

FlexTM's decoupled mechanisms make an irrevocability escape hatch cheap
to build in software: a single memory-resident token serializes the
degraded path, AOU-targeted aborts (``CAS ACTIVE -> ABORTED`` on each
peer's TSW) drain in-flight transactions, and the holder then runs with
its signatures quiesced and every wound attempt deflected — so it is
*guaranteed* to commit.  Requesters wait in FIFO order, which is what
turns "eventually commits" into the testable bounded-retry
starvation-freedom property of docs/RESILIENCE.md.

The token is pure software state (no RNG, no clock reads); granting and
releasing are driven entirely by the
:class:`~repro.resilience.degrade.ResilienceController`.
"""

from __future__ import annotations

import collections
from typing import Deque, List, Optional


class IrrevocabilityToken:
    """A FIFO-granted, mutually exclusive irrevocability token.

    At most one thread holds the token at any time (asserted by the
    ``irrevocable-mutex`` invariant).  Requesters enqueue once and are
    granted strictly in arrival order, so the wait of the *k*-th
    requester is bounded by the serial commits of the *k-1* ahead of it.
    """

    def __init__(self):
        #: Thread id of the current holder (None when free).
        self.holder: Optional[int] = None
        self._queue: Deque[int] = collections.deque()
        #: Telemetry.
        self.grants = 0
        self.releases = 0

    @property
    def busy(self) -> bool:
        """True while anyone holds or awaits the token.

        Admission gates on this: no *new* transaction starts while the
        system is draining into (or running in) serial mode.
        """
        return self.holder is not None or bool(self._queue)

    def enqueue(self, thread_id: int) -> None:
        """Join the FIFO (idempotent; the holder never re-queues)."""
        if thread_id == self.holder or thread_id in self._queue:
            return
        self._queue.append(thread_id)

    def try_grant(self, thread_id: int) -> bool:
        """Poll for the token; True when ``thread_id`` is the holder."""
        if self.holder == thread_id:
            return True
        if self.holder is None and self._queue and self._queue[0] == thread_id:
            self._queue.popleft()
            self.holder = thread_id
            self.grants += 1
            return True
        return False

    def release(self, thread_id: int) -> None:
        """Return the token (a no-op unless ``thread_id`` holds it)."""
        if self.holder == thread_id:
            self.holder = None
            self.releases += 1

    def holders(self) -> List[int]:
        """All current holders — length > 1 is an invariant violation."""
        return [] if self.holder is None else [self.holder]

    def waiting(self) -> List[int]:
        return list(self._queue)

    def __repr__(self) -> str:
        return (
            f"IrrevocabilityToken(holder={self.holder}, "
            f"queue={list(self._queue)}, grants={self.grants})"
        )
