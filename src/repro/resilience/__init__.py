"""Adaptive degradation: pressure sensors, fallback ladder, irrevocability.

Public surface of the resilience layer::

    from repro.resilience import DegradeSpec, ResilienceController
    from repro.resilience import IrrevocabilityToken, Rung
    from repro.resilience import PressureSample, sample_machine

See docs/RESILIENCE.md for the sensor list, the escalation ladder, the
serial-irrevocable protocol, and the starvation-freedom argument.
"""

from repro.resilience.degrade import (
    DegradeSpec,
    ResilienceController,
    Rung,
    family_seed,
    rung_for,
    should_rotate,
)
from repro.resilience.fallback import FallbackPolicy, FallbackSpec
from repro.resilience.irrevocable import IrrevocabilityToken
from repro.resilience.pressure import PressureSample, record_samples, sample_machine

__all__ = [
    "DegradeSpec",
    "FallbackPolicy",
    "FallbackSpec",
    "IrrevocabilityToken",
    "PressureSample",
    "ResilienceController",
    "Rung",
    "family_seed",
    "record_samples",
    "rung_for",
    "sample_machine",
    "should_rotate",
]
