"""The deterministic escalation ladder: the *react* half of the loop.

Sensor readings (:mod:`repro.resilience.pressure`) and per-thread abort
streaks drive a rung-by-rung fallback that trades concurrency for
progress — exactly the policy flexibility FlexTM's decoupled hardware
exists to enable:

``HEALTHY``
    nothing special; the configured policy runs unmodified.
``BOOSTED``
    a thread's consecutive-abort streak crossed ``boost_after``: the
    contention manager's back-off window grows (bounded multiplicative
    boost), spacing duelling transactions apart.
``EAGER``
    the streak crossed ``eager_after``: the starving transaction's next
    attempt flips from lazy to eager conflict management (the paper's
    E/L descriptor bit), resolving conflicts at access time instead of
    repeatedly losing the commit race.
``IRREVOCABLE``
    the streak crossed ``irrevocable_after``: the thread requests the
    single :class:`~repro.resilience.irrevocable.IrrevocabilityToken`,
    drains in-flight peers via AOU-targeted aborts, and runs serially
    to a guaranteed commit.

Independently, *sustained* signature pressure (``sig_sustain``
consecutive hot samples) rotates the Bloom hash family: signatures
rebind to a fresh family at their next (clean) transaction begin, and
cross-family comparisons degrade to fully conservative answers
(``Signature._foreign``), so rotation can never produce a false
negative.

The controller is wired like the tracer/chaos layers: every hook site
guards on ``machine.resilience is None``, it draws no random numbers,
and a run without a controller is bit-identical to a build without this
package.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, Tuple

from repro.core.descriptor import ConflictMode
from repro.core.tsw import TxStatus
from repro.resilience.irrevocable import IrrevocabilityToken
from repro.resilience.pressure import record_samples, sample_machine
from repro.signatures.hashing import make_hash_family

#: Default seed of :func:`make_hash_family` (generation 0 must reuse it
#: so an installed-but-idle controller never changes a signature probe).
_BASE_FAMILY_SEED = 0xF1E7
#: Odd multiplier decorrelating per-generation family seeds.
_GENERATION_MIX = 0x9E3779B1


class Rung(enum.IntEnum):
    """Ladder position of one thread (ordered: comparisons are valid)."""

    HEALTHY = 0
    BOOSTED = 1
    EAGER = 2
    IRREVOCABLE = 3


@dataclasses.dataclass(frozen=True)
class DegradeSpec:
    """Escalation-ladder parameters (immutable, picklable).

    The default thresholds are pinned by
    tests/resilience/test_degrade_golden.py — tune them there, visibly.
    """

    #: Consecutive aborts before the contention back-off is boosted.
    boost_after: int = 2
    #: Consecutive aborts before a lazy transaction flips to eager.
    eager_after: int = 4
    #: Consecutive aborts before irrevocability is requested.
    irrevocable_after: int = 6
    #: Multiplicative back-off growth per boost (bounded by max_boost).
    boost_growth: int = 2
    #: Cap on the cumulative contention-manager boost.
    max_boost: int = 8
    #: Scheduler steps between pressure-sensor sweeps.
    sample_interval: int = 64
    #: Signature bit-fill fraction considered "hot".
    sig_fill_threshold: float = 0.55
    #: Estimated Bloom false-positive probability considered "hot".
    sig_fp_threshold: float = 0.30
    #: Consecutive hot sweeps before the hash family rotates.
    sig_sustain: int = 3
    #: Lifetime cap on hash-family rotations (bounded reconfiguration).
    max_rotations: int = 4
    #: Busy-wait granularity while polling for the token (cycles).
    token_poll_cycles: int = 40


def rung_for(spec: DegradeSpec, streak: int) -> Rung:
    """Pure streak -> rung mapping (golden-table locked)."""
    if streak >= spec.irrevocable_after:
        return Rung.IRREVOCABLE
    if streak >= spec.eager_after:
        return Rung.EAGER
    if streak >= spec.boost_after:
        return Rung.BOOSTED
    return Rung.HEALTHY


def should_rotate(spec: DegradeSpec, hot_streak: int, rotations: int) -> bool:
    """Pure rotation decision (golden-table locked)."""
    return hot_streak >= spec.sig_sustain and rotations < spec.max_rotations


def family_seed(generation: int) -> int:
    """Deterministic hash-family seed for one rotation generation."""
    if generation == 0:
        return _BASE_FAMILY_SEED
    return _BASE_FAMILY_SEED ^ (generation * _GENERATION_MIX)


class ResilienceController:
    """Closes the detect->react loop over one machine.

    Install with :meth:`FlexTMMachine.set_resilience`; every hook is a
    no-op path when no controller is installed.  The controller draws
    **no** random numbers — all decisions are functions of observed
    state — so armed runs are deterministic and golden-table testable.
    """

    def __init__(self, spec: DegradeSpec = DegradeSpec()):
        self.spec = spec
        self.machine = None
        #: The contention manager boosts apply to (bound separately —
        #: harnesses wrap backends, so attach() cannot discover it).
        self.manager = None
        self.token = IrrevocabilityToken()
        #: True only between drain convergence and the holder's commit.
        self.serial_active = False
        self._holder_thread = None
        #: Hash-family rotation generation (monotonic).
        self.generation = 0
        self._rotations = 0
        self._hot_streak = 0
        self._proc_generation: Dict[int, int] = {}
        self._steps = 0
        #: thread id -> consecutive-abort streak / current rung.
        self._streaks: Dict[int, int] = {}
        self._rungs: Dict[int, Rung] = {}
        #: Threads currently inside an attempt (admission passed, not
        #: yet committed/aborted) — the drain-wait condition.
        self._in_flight: set = set()
        self._attempt_start: Dict[int, int] = {}
        self._escalation_start: Dict[int, int] = {}
        self._boosted: set = set()
        self._flipped: set = set()
        #: Commits grouped by the rung the committing thread was on.
        self.commits_by_rung: Dict[str, int] = {r.name.lower(): 0 for r in Rung}
        #: Worst consecutive-abort streak seen (starvation-freedom bound).
        self.peak_streak = 0
        #: Per-rung escalation counters surfaced on RunResult.
        self.counters: Dict[str, int] = {
            "boosts": 0,
            "policy_flips": 0,
            "sig_rotations": 0,
            "irrevocable_grants": 0,
            "irrevocable_drains": 0,
            "deflected_wounds": 0,
        }

    # -- wiring -----------------------------------------------------------------

    def attach(self, machine) -> None:
        self.machine = machine

    def bind_manager(self, manager) -> None:
        """Bind the contention manager boosts should reach (or None)."""
        self.manager = manager

    # -- scheduler hook: pressure sensing --------------------------------------

    def on_step(self, scheduler) -> None:
        """Called once per scheduler step; samples every Nth step."""
        self._steps += 1
        if self._steps % self.spec.sample_interval:
            return
        samples = sample_machine(self.machine)
        record_samples(self.machine.stats, samples)
        hot = any(
            s.hot(self.spec.sig_fill_threshold, self.spec.sig_fp_threshold)
            for s in samples
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        if should_rotate(self.spec, self._hot_streak, self._rotations):
            self.generation += 1
            self._rotations += 1
            self._hot_streak = 0
            self.counters["sig_rotations"] += 1
            self.machine.stats.counter("resilience.sig_rotations").increment()
            if self.machine.tracer.enabled:
                self.machine.tracer.degrade(
                    self.machine.max_cycle(), "rotate", generation=self.generation
                )

    # -- processor hook: hash-family rotation ----------------------------------

    def maybe_rotate(self, proc) -> None:
        """Rebind a core's signatures to the current hash family.

        Called from ``begin_transaction`` right after the flash-clear —
        the only point the hardware could legally re-wire the hash
        network (no live bits depend on the old family).
        """
        if self._proc_generation.get(proc.proc_id, 0) == self.generation:
            return
        family = make_hash_family(
            proc.params.signature_bits,
            proc.params.signature_hashes,
            seed=family_seed(self.generation),
        )
        proc.rsig.rebind_family(family)
        proc.wsig.rebind_family(family)
        self._proc_generation[proc.proc_id] = self.generation

    # -- runtime hook: conflict-mode fallback ----------------------------------

    def mode_for(self, thread, default: ConflictMode) -> ConflictMode:
        """The conflict mode this attempt should run under."""
        rung = self._rungs.get(thread.thread_id, Rung.HEALTHY)
        if rung >= Rung.EAGER and default is ConflictMode.LAZY:
            if thread.thread_id not in self._flipped:
                self._flipped.add(thread.thread_id)
                self.counters["policy_flips"] += 1
                self.machine.stats.counter("resilience.policy_flips").increment()
                if self.machine.tracer.enabled:
                    self.machine.tracer.degrade(
                        self.machine.max_cycle(), "policy_flip",
                        thread=thread.thread_id,
                    )
            return ConflictMode.EAGER
        return default

    # -- thread hooks: admission and lifecycle ---------------------------------

    def admission(self, thread) -> Iterator[Tuple]:
        """Gate one attempt; generator driven by the scheduler.

        Threads on the IRREVOCABLE rung acquire the token (draining
        peers first); everyone else spins while the token is busy, so
        the serial holder faces no new contention.  On the healthy path
        this yields nothing and touches nothing.
        """
        tid = thread.thread_id
        rung = self._rungs.get(tid, Rung.HEALTHY)
        if rung is Rung.IRREVOCABLE and self.token.holder != tid:
            yield from self._acquire(thread)
        else:
            while self.token.busy and self.token.holder != tid:
                yield ("work", self.spec.token_poll_cycles)

    def _acquire(self, thread) -> Iterator[Tuple]:
        """FIFO-acquire the token, then drain every in-flight peer."""
        tid = thread.thread_id
        machine = self.machine
        self.token.enqueue(tid)
        while not self.token.try_grant(tid):
            yield ("work", self.spec.token_poll_cycles)
        self._holder_thread = thread
        self.counters["irrevocable_grants"] += 1
        machine.stats.counter("resilience.irrevocable_grants").increment()
        if machine.tracer.enabled:
            machine.tracer.degrade(
                machine.max_cycle(), "irrevocable_grant", thread=tid
            )
        while True:
            drained = 0
            for descriptor in list(machine._descriptors_by_tsw.values()):
                if descriptor.thread_id == tid:
                    continue
                if machine.read_status(descriptor) is not TxStatus.ACTIVE:
                    continue
                if machine.force_abort(descriptor, by=-1, kind="irrevocable"):
                    drained += 1
                    self.counters["irrevocable_drains"] += 1
                    machine.stats.counter("resilience.irrevocable_drains").increment()
                    if machine.tracer.enabled:
                        machine.tracer.degrade(
                            machine.max_cycle(), "irrevocable_drain",
                            thread=descriptor.thread_id,
                        )
            if not drained and not (self._in_flight - {tid}):
                break
            yield ("work", self.spec.token_poll_cycles)
        self.serial_active = True

    def on_attempt(self, thread, now: int) -> None:
        """An attempt passed admission and is about to begin."""
        tid = thread.thread_id
        self._in_flight.add(tid)
        self._attempt_start[tid] = now

    def on_commit(self, thread, now: int) -> None:
        tid = thread.thread_id
        rung = self._rungs.get(tid, Rung.HEALTHY)
        self.commits_by_rung[rung.name.lower()] += 1
        if rung > Rung.HEALTHY:
            start = self._escalation_start.pop(tid, now)
            self.machine.stats.histogram("resilience.recovery_cycles").record(
                max(0, now - start)
            )
            if self.machine.tracer.enabled:
                self.machine.tracer.degrade(
                    now, "recover", thread=tid, rung=rung.name.lower()
                )
        self._streaks[tid] = 0
        self._rungs[tid] = Rung.HEALTHY
        self._flipped.discard(tid)
        if tid in self._boosted:
            self._boosted.discard(tid)
            if not self._boosted and self.manager is not None:
                self.manager.reset_escalation()
        if self.token.holder == tid:
            self.serial_active = False
            self._holder_thread = None
            self.token.release(tid)
            if self.machine.tracer.enabled:
                self.machine.tracer.degrade(now, "irrevocable_release", thread=tid)
        self._in_flight.discard(tid)
        self._attempt_start.pop(tid, None)

    def on_abort(self, thread, now: int) -> None:
        tid = thread.thread_id
        self._in_flight.discard(tid)
        streak = self._streaks.get(tid, 0) + 1
        self._streaks[tid] = streak
        self.peak_streak = max(self.peak_streak, streak)
        start = self._attempt_start.pop(tid, None)
        if start is not None:
            self.machine.stats.histogram("resilience.wasted_cycles").record(
                max(0, now - start)
            )
        # Defensive: a holder abort (should not happen once serial —
        # wounds are deflected and peers are gated) must not wedge the
        # FIFO; release and let the ladder re-acquire.
        if self.token.holder == tid:
            self.serial_active = False
            self._holder_thread = None
            self.token.release(tid)
        old = self._rungs.get(tid, Rung.HEALTHY)
        new = rung_for(self.spec, streak)
        if new is old:
            return
        self._rungs[tid] = new
        if old is Rung.HEALTHY:
            self._escalation_start[tid] = now
        self.machine.stats.counter(
            f"resilience.rung.{new.name.lower()}"
        ).increment()
        if self.machine.tracer.enabled:
            self.machine.tracer.degrade(
                now, "escalate", thread=tid, rung=new.name.lower(), streak=streak
            )
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.on_escalation(now, tid, new.name.lower())
        if new is Rung.BOOSTED:
            self._boosted.add(tid)
            self.counters["boosts"] += 1
            if self.manager is not None:
                self.manager.escalate(
                    growth=self.spec.boost_growth, max_boost=self.spec.max_boost
                )

    # -- machine hooks: wound deflection and quiescing -------------------------

    def deflects(self, tsw_address: int) -> bool:
        """Is this TSW protected from abort writes right now?"""
        if not self.serial_active or self._holder_thread is None:
            return False
        descriptor = self._holder_thread.descriptor
        return descriptor is not None and descriptor.tsw_address == tsw_address

    def note_deflected(self) -> None:
        self.counters["deflected_wounds"] += 1
        self.machine.stats.counter("resilience.deflected_wounds").increment()

    def quiesced(self, proc_id: int) -> bool:
        """Signatures quiesced (chaos corruption suppressed) here?"""
        return (
            self.serial_active
            and self._holder_thread is not None
            and self._holder_thread.processor == proc_id
        )

    # -- scheduler hook: holder pinning ----------------------------------------

    def pinned(self, thread) -> bool:
        """The serial holder is never preempted or migrated."""
        return thread is self._holder_thread

    # -- reporting --------------------------------------------------------------

    def token_holders(self):
        return self.token.holders()

    def escalation_counters(self) -> Dict[str, int]:
        """Flat counter dict merged into ``RunResult.escalations``."""
        out = dict(self.counters)
        out["peak_abort_streak"] = self.peak_streak
        for rung, commits in self.commits_by_rung.items():
            out[f"commits_{rung}"] = commits
        return out

    def rung_census(self) -> Dict[str, int]:
        """Threads currently on each rung (sampled by the metrics hub)."""
        census = {rung.name.lower(): 0 for rung in Rung}
        for rung in self._rungs.values():
            census[rung.name.lower()] += 1
        return census
