"""FlexTM: Flexible Decoupled Transactional Memory Support - reproduction.

A simulator-based reproduction of Shriraman, Dwarkadas & Scott's FlexTM
(Univ. of Rochester TR #925 / ISCA 2008).  The package provides:

* a cycle-approximate 16-core CMP with directory-based TMESI coherence
  (:mod:`repro.coherence`, :mod:`repro.memory`);
* FlexTM's decoupled mechanisms - signatures, conflict summary tables,
  programmable data isolation, alert-on-update, overflow tables, and
  context-switch virtualization (:mod:`repro.signatures`,
  :mod:`repro.core`);
* a software TM runtime with eager/lazy policies and pluggable
  contention managers (:mod:`repro.runtime`);
* the baseline systems CGL, RSTM, TL-2 and RTM-F (:mod:`repro.stm`);
* the paper's workloads (:mod:`repro.workloads`), FlexWatcher
  (:mod:`repro.tools`), area model (:mod:`repro.area`), and experiment
  harnesses for every table and figure (:mod:`repro.harness`).

Quick start::

    from repro.harness.runner import ExperimentConfig, run_experiment

    result = run_experiment(
        ExperimentConfig(workload="RBTree", system="FlexTM", threads=8)
    )
    print(result.throughput, "committed transactions per million cycles")
"""

from repro.params import CacheGeometry, SystemParams, DEFAULT_PARAMS, small_test_params
from repro.errors import (
    ConfigurationError,
    IllegalOperation,
    OverflowTableError,
    ProtocolError,
    ReproError,
    SchedulerError,
    TransactionAborted,
    TransactionError,
    WatchpointError,
)

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "SystemParams",
    "DEFAULT_PARAMS",
    "small_test_params",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "TransactionError",
    "TransactionAborted",
    "IllegalOperation",
    "OverflowTableError",
    "SchedulerError",
    "WatchpointError",
    "__version__",
]
