"""A Discover-style binary instrumenter baseline.

"Discover" is Sun's SPARC binary instrumentation tool the paper
compares against: it rewrites every memory access with checking code,
so its cost is per-access instrumentation — tens of cycles each —
regardless of whether the access is anywhere near a watched region.
The published slowdowns are 17x-75x depending on the binary's memory
access density; programs Discover did not support are reported N/A.
"""

from __future__ import annotations

from typing import Optional

from repro.tools.bugbench import BugBenchProgram


class DiscoverInstrumenter:
    """Cost model for whole-binary instrumentation."""

    def __init__(self, dispatch_overhead_cycles: int = 2):
        self.dispatch_overhead_cycles = dispatch_overhead_cycles

    def slowdown(self, program: BugBenchProgram) -> Optional[float]:
        """Estimated runtime multiple vs the uninstrumented binary.

        Every access pays the program's instrumentation cost (lookup in
        the shadow-memory structures, bounds checks), modelled from the
        per-binary instrumentation density.
        """
        if program.discover_cycles_per_access is None:
            return None  # the paper reports N/A for this benchmark
        per_access = program.discover_cycles_per_access + self.dispatch_overhead_cycles
        # Baseline cost is ~1 cycle/access in our synthetic programs.
        return 1.0 + per_access

    def run_cycles(self, program: BugBenchProgram) -> Optional[int]:
        multiple = self.slowdown(program)
        if multiple is None:
            return None
        return int(program.accesses * multiple)
