"""RaceWatcher: data-race detection with signatures and CSTs.

The paper's conclusion sketches applying FlexTM components "to problems
in security, debugging, and fault tolerance"; FlexWatcher exercised
signatures + AOU, and Section 8 closes hoping to "exploit other FlexTM
hardware components (i.e., CST and PDI)".  RaceWatcher is that tool for
the CSTs: it monitors *non-transactional* multithreaded execution and
flags unsynchronized cross-thread sharing.

Mechanism: each epoch (delimited by synchronization operations, which
the program reports through :meth:`sync`), every thread's loads and
stores update its Rsig/Wsig exactly as TLoads/TStores would.  The
hardware sets CST bits whenever a coherence request hits a remote
signature — a local write vs remote read (W-R), write vs write (W-W),
or read vs remote write (R-W).  A set bit between two epochs with no
intervening synchronization is precisely a happens-before violation
candidate: a data race.  Software drains the CSTs at each sync point,
attributing races to (thread, line) pairs via the signatures.

This is a conservative detector (signature aliasing can manufacture
candidates), so every report is a *candidate* the handler disambiguates
against exact per-epoch access logs — the same disambiguation pattern
FlexWatcher uses.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

from repro.core.cst import ConflictSummaryTables
from repro.memory.address import AddressMap
from repro.signatures.bloom import Signature


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """One detected (candidate) race."""

    line_address: int
    first_thread: int
    second_thread: int
    kind: str  # "W-R" | "W-W" | "R-W"
    confirmed: bool


class RaceWatcher:
    """CST-based race detector over an access stream."""

    def __init__(
        self,
        num_threads: int,
        signature_bits: int = 2048,
        num_hashes: int = 4,
        line_bytes: int = 64,
    ):
        if num_threads < 2:
            raise ValueError("race detection needs at least two threads")
        self.num_threads = num_threads
        self.amap = AddressMap(line_bytes)
        self._rsigs = [Signature(signature_bits, num_hashes) for _ in range(num_threads)]
        self._wsigs = [Signature(signature_bits, num_hashes) for _ in range(num_threads)]
        self._csts = [ConflictSummaryTables(num_threads) for _ in range(num_threads)]
        # Exact per-epoch logs for disambiguation (the software side).
        self._read_lines: List[Set[int]] = [set() for _ in range(num_threads)]
        self._write_lines: List[Set[int]] = [set() for _ in range(num_threads)]
        self.reports: List[RaceReport] = []
        self.false_candidates = 0

    # -- the monitored program's access stream ---------------------------------

    def access(self, thread: int, address: int, is_write: bool) -> None:
        """One load/store by ``thread``; hardware-side tracking."""
        self._check_thread(thread)
        line = self.amap.line_of(address)
        if is_write:
            self._wsigs[thread].insert(line)
            self._write_lines[thread].add(line)
        else:
            self._rsigs[thread].insert(line)
            self._read_lines[thread].add(line)
        # Coherence: the access 'pings' every other thread's signatures,
        # setting CSTs exactly as Threatened/Exposed-Read responses do.
        for other in range(self.num_threads):
            if other == thread:
                continue
            if self._wsigs[other].member(line):
                if is_write:
                    self._csts[other].w_w.set(thread)
                    self._csts[thread].w_w.set(other)
                else:
                    self._csts[other].w_r.set(thread)
                    self._csts[thread].r_w.set(other)
            elif is_write and self._rsigs[other].member(line):
                self._csts[other].r_w.set(thread)
                self._csts[thread].w_r.set(other)

    # -- synchronization boundaries ----------------------------------------------

    def sync(self, thread: int) -> List[RaceReport]:
        """A synchronization op by ``thread``: drain and classify.

        Anything the CSTs accumulated against this thread since its
        last sync is a candidate race; the handler disambiguates each
        against the exact logs, then the thread's epoch state resets.
        """
        self._check_thread(thread)
        new_reports: List[RaceReport] = []
        tables = self._csts[thread]
        for register, kind in ((tables.w_r, "W-R"), (tables.w_w, "W-W"), (tables.r_w, "R-W")):
            for other in list(register.processors()):
                new_reports.extend(self._disambiguate(thread, other, kind))
        tables.clear()
        self._rsigs[thread].clear()
        self._wsigs[thread].clear()
        self._read_lines[thread].clear()
        self._write_lines[thread].clear()
        self.reports.extend(new_reports)
        return new_reports

    def _disambiguate(self, thread: int, other: int, kind: str) -> List[RaceReport]:
        if kind == "W-R":
            mine, theirs = self._write_lines[thread], self._read_lines[other]
        elif kind == "W-W":
            mine, theirs = self._write_lines[thread], self._write_lines[other]
        else:  # R-W
            mine, theirs = self._read_lines[thread], self._write_lines[other]
        overlap = mine & theirs
        if not overlap:
            self.false_candidates += 1
            return []
        return [
            RaceReport(
                line_address=line,
                first_thread=thread,
                second_thread=other,
                kind=kind,
                confirmed=True,
            )
            for line in sorted(overlap)
        ]

    def racy_pairs(self) -> Set[Tuple[int, int]]:
        """Unordered thread pairs with at least one confirmed race."""
        return {
            (min(r.first_thread, r.second_thread), max(r.first_thread, r.second_thread))
            for r in self.reports
        }

    def _check_thread(self, thread: int) -> None:
        if not 0 <= thread < self.num_threads:
            raise ValueError(f"thread {thread} out of range")
