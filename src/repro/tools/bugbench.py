"""Synthetic BugBench programs (Section 8, Table 4b).

We do not have the BugBench binaries (bc, gzip, man, squid), so each
program is a deterministic synthetic access stream with the same bug
class and a profile chosen to exercise the same cost drivers the paper
names: "number of mallocs, heap allocated, and frequency of memory
accesses".  Heavy allocators with hot heaps (bc, man) trap often and
show the larger FlexWatcher slowdowns; streaming compressors (gzip)
rarely touch their pads and run nearly full speed; squid's leak
detector monitors *every* object, so each heap access traps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.sim.rng import DeterministicRng
from repro.tools.flexwatcher import FlexWatcher, WatchMode, WatchReport

#: Pad bytes added around each allocation in BO mode (one line).
PAD_BYTES = 64


@dataclasses.dataclass(frozen=True)
class BugBenchProgram:
    """Profile of one synthetic buggy program."""

    name: str
    mode: WatchMode
    #: Number of heap allocations performed up front.
    mallocs: int
    #: Bytes per allocation.
    object_bytes: int
    #: Total memory accesses in the measured region.
    accesses: int
    #: Fraction of accesses that land on/next to watched lines (the
    #: trap frequency driver).
    watched_access_fraction: float
    #: Accesses at which the real bug fires (overflow write into a pad
    #: / invariant break); None for leak mode.
    bug_at_access: Optional[int]
    #: Per-access instrumentation cycles for the Discover baseline
    #: (instrumentation density differs per binary); None where the
    #: paper reports N/A.
    discover_cycles_per_access: Optional[int]


BUGBENCH: Dict[str, BugBenchProgram] = {
    "BC-BO": BugBenchProgram(
        name="BC-BO",
        mode=WatchMode.BUFFER_OVERFLOW,
        mallocs=220,
        object_bytes=64,
        accesses=60_000,
        watched_access_fraction=0.0110,
        bug_at_access=55_000,
        discover_cycles_per_access=74,
    ),
    "Gzip-BO": BugBenchProgram(
        name="Gzip-BO",
        mode=WatchMode.BUFFER_OVERFLOW,
        mallocs=40,
        object_bytes=4096,
        accesses=120_000,
        watched_access_fraction=0.0030,
        bug_at_access=110_000,
        discover_cycles_per_access=16,
    ),
    "Gzip-IV": BugBenchProgram(
        name="Gzip-IV",
        mode=WatchMode.INVARIANT,
        mallocs=40,
        object_bytes=4096,
        accesses=120_000,
        watched_access_fraction=0.00030,
        bug_at_access=100_000,
        discover_cycles_per_access=None,
    ),
    "Man": BugBenchProgram(
        name="Man",
        mode=WatchMode.BUFFER_OVERFLOW,
        mallocs=280,
        object_bytes=128,
        accesses=50_000,
        watched_access_fraction=0.0048,
        bug_at_access=45_000,
        discover_cycles_per_access=64,
    ),
    "Squid": BugBenchProgram(
        name="Squid",
        mode=WatchMode.MEMORY_LEAK,
        mallocs=150,
        object_bytes=64,
        accesses=40_000,
        watched_access_fraction=0.0075,
        bug_at_access=None,
        discover_cycles_per_access=None,
    ),
}


def run_program(program: BugBenchProgram, seed: int = 7, monitored: bool = True) -> WatchReport:
    """Execute one synthetic program under (or without) FlexWatcher."""
    rng = DeterministicRng(seed)
    watcher = FlexWatcher(program.mode)
    heap_base = 1 << 20
    cursor = heap_base
    watched_targets = []
    plain_targets = []
    for _ in range(program.mallocs):
        object_base = cursor
        cursor += program.object_bytes
        if program.mode is not WatchMode.MEMORY_LEAK:
            plain_targets.append(object_base)
        if program.mode is WatchMode.BUFFER_OVERFLOW:
            pad = cursor
            cursor += PAD_BYTES
            if monitored:
                watcher.watch(pad, PAD_BYTES)
            watched_targets.append(pad)
        elif program.mode is WatchMode.MEMORY_LEAK:
            if monitored:
                watcher.watch(object_base, program.object_bytes)
            watched_targets.append(object_base)
    if program.mode is WatchMode.MEMORY_LEAK:
        # The unmonitored traffic of a leak-hunting run is the program's
        # stack/global accesses, which live outside the watched heap.
        stack_base = cursor + (1 << 20)
        plain_targets = [stack_base + slot * 4096 for slot in range(64)]
    if program.mode is WatchMode.INVARIANT:
        invariant_var = cursor
        cursor += 64
        if monitored:
            watcher.watch(invariant_var, 8)
        watched_targets.append(invariant_var)
    if monitored:
        watcher.activate()

    baseline_cycles = 0
    bugs = 0
    for index in range(program.accesses):
        is_bug = program.bug_at_access is not None and index == program.bug_at_access
        on_watched = is_bug or rng.random() < program.watched_access_fraction
        if on_watched:
            target = rng.choice(watched_targets)
        else:
            target = rng.choice(plain_targets) + rng.randint(0, max(0, program.object_bytes - 8))
        is_write = is_bug or rng.random() < 0.3
        baseline_cycles += 1
        label = watcher.access(target, is_write)
        if label is not None:
            bugs += 1
    if program.mode is WatchMode.MEMORY_LEAK:
        bugs = len(watcher.stale_objects(horizon_cycles=watcher.clock.now // 2))
    return WatchReport(
        cycles=watcher.clock.now,
        baseline_cycles=baseline_cycles,
        accesses=watcher.accesses,
        alerts=watcher.alerts,
        true_alerts=watcher.true_alerts,
        false_alerts=watcher.false_alerts,
        bugs_detected=bugs,
    )
