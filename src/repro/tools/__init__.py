"""Non-transactional uses of FlexTM hardware (Section 8)."""

from repro.tools.flexwatcher import FlexWatcher, WatchMode, WatchReport
from repro.tools.bugbench import BugBenchProgram, BUGBENCH, run_program
from repro.tools.discover import DiscoverInstrumenter
from repro.tools.racewatcher import RaceReport, RaceWatcher

__all__ = [
    "FlexWatcher",
    "WatchMode",
    "WatchReport",
    "BugBenchProgram",
    "BUGBENCH",
    "run_program",
    "DiscoverInstrumenter",
    "RaceWatcher",
    "RaceReport",
]
