"""FlexWatcher: memory-bug detection with signatures + AOU (Section 8).

FlexTM exposes two watchpoint mechanisms:

* **AOU** — precise, cache-block-granular, limited by L1 capacity;
* **Signatures** — unbounded but subject to false positives.

With the small interface extension of Table 4(a) (``activate`` makes
*local* loads and stores test membership in the signature and trap to a
registered handler on a hit), FlexWatcher implements three detectors:

* **BO** (buffer overflow): pad every heap allocation with 64 bytes and
  watch the pads for modification;
* **ML** (memory leak): monitor *every* heap object and update its
  last-touch timestamp in the access trap;
* **IV** (invariant violation): ALoad the variable's cache block and
  assert program invariants in the handler.

On every alert the software handler *disambiguates* — checks whether
the faulting address is genuinely watched (signatures can alias) —
before acting.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Set

from repro.memory.address import AddressMap
from repro.sim.clock import CycleClock
from repro.signatures.bloom import Signature


class WatchMode(enum.Enum):
    BUFFER_OVERFLOW = "BO"
    MEMORY_LEAK = "ML"
    INVARIANT = "IV"


#: Software handler cost per delivered alert: spill, disambiguate
#: against the watch list, act, return.
HANDLER_CYCLES = 100
#: Extra work when the alert is genuine (record/act on the bug).
ACTION_CYCLES = 50
#: Cost of inserting one address into the signature (malloc path).
INSERT_CYCLES = 4


@dataclasses.dataclass
class WatchReport:
    """Outcome of a monitored program run."""

    cycles: int
    baseline_cycles: int
    accesses: int
    alerts: int
    true_alerts: int
    false_alerts: int
    bugs_detected: int

    @property
    def slowdown(self) -> float:
        if self.baseline_cycles == 0:
            return 1.0
        return self.cycles / self.baseline_cycles


class FlexWatcher:
    """The monitoring tool, driving one core's signature hardware."""

    def __init__(
        self,
        mode: WatchMode,
        signature_bits: int = 2048,
        num_hashes: int = 4,
        line_bytes: int = 64,
    ):
        self.mode = mode
        self.amap = AddressMap(line_bytes)
        # BO watches written pads (Wsig); ML watches all accesses, so it
        # activates both; IV uses (one-line) AOU precision.
        self.rsig = Signature(signature_bits, num_hashes)
        self.wsig = Signature(signature_bits, num_hashes)
        self.clock = CycleClock()
        self._watched_lines: Set[int] = set()
        self._timestamps: Dict[int, int] = {}
        self.accesses = 0
        self.alerts = 0
        self.true_alerts = 0
        self.bugs_detected = 0
        self.active = False

    # -- Table 4(a) interface ----------------------------------------------------

    def watch(self, address: int, length: int = 1) -> None:
        """insert: add [address, address+length) to the watch set."""
        for line in self.amap.lines_spanning(address, length):
            self.rsig.insert(line)
            self.wsig.insert(line)
            self._watched_lines.add(line)
            self.clock.advance(INSERT_CYCLES)

    def activate(self) -> None:
        """Switch on local access monitoring."""
        self.active = True

    def clear(self) -> None:
        self.rsig.clear()
        self.wsig.clear()
        self._watched_lines.clear()
        self.active = False

    # -- the monitored program's access path --------------------------------------

    def access(self, address: int, is_write: bool, cost_cycles: int = 1) -> Optional[str]:
        """One program load/store under monitoring.

        The signature check itself is hardware (free); only alerts cost
        software cycles.  Returns a detection label when the handler
        confirms a real bug.
        """
        self.accesses += 1
        self.clock.advance(cost_cycles)
        if not self.active:
            return None
        line = self.amap.line_of(address)
        if self.mode is WatchMode.BUFFER_OVERFLOW:
            # Pads are watched *for modification* (Table 4b): only
            # stores consult the (write) signature.
            if not is_write or not self.wsig.member(line):
                return None
        elif self.mode is WatchMode.INVARIANT:
            # IV uses AOU: precise cache-block marks, no aliasing.
            if line not in self._watched_lines:
                return None
        else:  # MEMORY_LEAK monitors every touch of a heap object
            signature = self.wsig if is_write else self.rsig
            if not signature.member(line):
                return None
        # Alert: trap to the handler, which disambiguates.
        self.alerts += 1
        self.clock.advance(HANDLER_CYCLES)
        if line not in self._watched_lines:
            return None  # signature false positive
        self.true_alerts += 1
        self.clock.advance(ACTION_CYCLES)
        if self.mode is WatchMode.MEMORY_LEAK:
            self._timestamps[line] = self.clock.now
            return None  # a touch, not a bug
        if self.mode is WatchMode.BUFFER_OVERFLOW and is_write:
            self.bugs_detected += 1
            return "buffer-overflow"
        if self.mode is WatchMode.INVARIANT:
            self.bugs_detected += 1
            return "invariant-violation"
        return None

    # -- leak detection wrap-up ----------------------------------------------------

    def stale_objects(self, horizon_cycles: int) -> Set[int]:
        """ML mode: watched lines not touched within the horizon."""
        cutoff = self.clock.now - horizon_cycles
        untouched = set()
        for line in sorted(self._watched_lines):
            if self._timestamps.get(line, -1) < cutoff:
                untouched.add(line)
        return untouched

    @property
    def false_alerts(self) -> int:
        return self.alerts - self.true_alerts
