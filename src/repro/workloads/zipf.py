"""Zipf-distributed page selection for LFUCache.

The paper draws pages with ``p(i)`` proportional to ``sum_{0<j<=i} j^-2``
(a heavily skewed distribution concentrating accesses on a handful of
hot pages — the source of LFUCache's total lack of concurrency).
"""

from __future__ import annotations

import bisect
from typing import List

from repro.sim.rng import DeterministicRng


class ZipfSampler:
    """Inverse-CDF sampler for the paper's Zipf-like distribution."""

    def __init__(self, num_items: int, exponent: float = 2.0):
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        weights: List[float] = []
        running = 0.0
        for rank in range(1, num_items + 1):
            running += rank ** (-exponent)
            weights.append(running)
        total = weights[-1]
        self._cdf = [weight / total for weight in weights]
        self.num_items = num_items

    def sample(self, rng: DeterministicRng) -> int:
        """Draw an item index in [0, num_items)."""
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, index: int) -> float:
        """Probability mass of one item (test/debug aid)."""
        if not 0 <= index < self.num_items:
            raise IndexError(index)
        previous = self._cdf[index - 1] if index else 0.0
        return self._cdf[index] - previous
