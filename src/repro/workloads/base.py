"""Workload infrastructure.

A :class:`Workload` owns shared state in simulated memory and mints an
infinite stream of :class:`~repro.runtime.txthread.WorkItem` objects per
thread.  Runs are time-bounded (the scheduler stops at a cycle budget),
which is how throughput — committed transactions per million cycles —
is measured even for configurations that livelock.

Setup ("warm-up") happens through direct memory-image writes, mirroring
the paper's untimed single-thread warm-up phase.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import FlexTMMachine, WORD_BYTES
from repro.runtime.txthread import WorkItem
from repro.sim.rng import DeterministicRng


def word_address(base: int, index: int) -> int:
    """Address of the ``index``-th word of a record at ``base``."""
    return base + index * WORD_BYTES


class Workload:
    """Base class for all benchmarks."""

    name = "abstract"

    def __init__(self, machine: FlexTMMachine, seed: int = 0):
        self.machine = machine
        self.seed = seed
        self.rng = DeterministicRng(seed)
        self._setup()

    def _setup(self) -> None:
        """Allocate and warm the shared structure (untimed)."""
        raise NotImplementedError

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        """Infinite stream of work items for one thread."""
        raise NotImplementedError

    # -- untimed helpers over the functional memory image ----------------------

    def _poke(self, address: int, value: int) -> None:
        self.machine.memory.write(address, value)
        self.machine.directory.warm_line(self.machine.amap.line_of(address))

    def _peek(self, address: int) -> int:
        return self.machine.memory.read(address)

    def _alloc_record(self, nwords: int) -> int:
        """Line-aligned record allocation (objects get their own lines)."""
        nbytes = max(nwords * WORD_BYTES, self.machine.params.line_bytes)
        return self.machine.allocate(nbytes, line_aligned=True)
