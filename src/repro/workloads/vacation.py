"""Vacation (WS2): travel-reservation system over an in-memory database.

Client threads run tasks against tables (cars, flights, rooms)
implemented as red-black trees — the SPECjbb2000-like workload of the
STAMP suite.  Tasks stream ~a hundred entries out of the database
through tree lookups; read-write tasks then reserve the cheapest
available resource (decrementing availability) and update the customer
record.

Contention modes (Table 3b):

* ``low``  — 90% of relations are in the queried range and read-only
  tasks dominate (90%); scales to ~10x CGL at 16 threads (Figure 4f).
* ``high`` — only 10% of relations are queried (a hot subset) with a
  50-50 read-only/read-write mix; dueling reservations rotate common
  sub-tree nodes and scalability drops (Figure 4g).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address
from repro.workloads.rbtree import RedBlackTree

#: Rows per table (cars / flights / rooms).
RELATIONS = 256
#: Resources examined by one task (the "~100 entries" stream comes from
#: lookups x tree depth at this table size).
QUERIES_PER_TASK = 8
NUM_TABLES = 3
NUM_CUSTOMERS = 64

# Resource-record fields (words).
R_TOTAL = 0
R_AVAILABLE = 1
R_PRICE = 2
R_WORDS = 3


class VacationWorkload(Workload):
    """The Vacation reservation benchmark."""

    name = "Vacation"

    def __init__(self, machine, seed: int = 0, contention: str = "low"):
        if contention not in ("low", "high"):
            raise ValueError("contention must be 'low' or 'high'")
        self.contention = contention
        super().__init__(machine, seed)
        self.name = f"Vacation-{contention.capitalize()}"

    def _setup(self) -> None:
        machine = self.machine
        warm_rng = self.rng.fork(0x7AC)
        self.tables: List[RedBlackTree] = []
        for _ in range(NUM_TABLES):
            table = RedBlackTree(machine)
            self._seed_table(table, warm_rng)
            self.tables.append(table)
        line = machine.params.line_bytes
        self.customer_base = machine.allocate(NUM_CUSTOMERS * line, line_aligned=True)
        if self.contention == "low":
            self.query_range = int(RELATIONS * 0.9)
            self.read_only_percent = 90
        else:
            self.query_range = max(1, int(RELATIONS * 0.1))
            self.read_only_percent = 50

    def _seed_table(self, table: RedBlackTree, rng) -> None:
        order = list(range(RELATIONS))
        # Balanced-ish insertion: midpoint-recursive order.
        def seed_span(span):
            if not span:
                return
            middle = len(span) // 2
            row = span[middle]
            record = self.machine.allocate(
                max(R_WORDS * 8, self.machine.params.line_bytes), line_aligned=True
            )
            total = rng.randint(100, 500)
            self._poke(word_address(record, R_TOTAL), total)
            self._poke(word_address(record, R_AVAILABLE), total)
            self._poke(word_address(record, R_PRICE), rng.randint(50, 999))
            table.seed_insert(row, record)
            seed_span(span[:middle])
            seed_span(span[middle + 1:])

        seed_span(order)

    # ------------------------------------------------------------ transactions

    def browse_task(self, ctx, queries):
        """Read-only: stream entries out of the database."""
        cheapest = None
        for table_index, row in queries:
            record = yield from self.tables[table_index].lookup(ctx, row)
            if record is None:
                continue
            available = yield from ctx.read(word_address(record, R_AVAILABLE))
            price = yield from ctx.read(word_address(record, R_PRICE))
            if available > 0 and (cheapest is None or price < cheapest):
                cheapest = price
        return cheapest

    def reserve_task(self, ctx, customer: int, queries):
        """Read-write: find the cheapest available resource and book it."""
        best = None
        for table_index, row in queries:
            record = yield from self.tables[table_index].lookup(ctx, row)
            if record is None:
                continue
            available = yield from ctx.read(word_address(record, R_AVAILABLE))
            price = yield from ctx.read(word_address(record, R_PRICE))
            if available > 0 and (best is None or price < best[1]):
                best = (record, price)
        if best is None:
            return False
        record, price = best
        available = yield from ctx.read(word_address(record, R_AVAILABLE))
        if available <= 0:
            return False
        yield from ctx.write(word_address(record, R_AVAILABLE), available - 1)
        customer_address = (
            self.customer_base + customer * self.machine.params.line_bytes
        )
        spent = yield from ctx.read(customer_address)
        yield from ctx.write(customer_address, spent + price)
        return True

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            queries = tuple(
                (rng.randint(0, NUM_TABLES - 1), rng.randint(0, self.query_range - 1))
                for _ in range(QUERIES_PER_TASK)
            )
            if rng.randint(1, 100) <= self.read_only_percent:
                yield WorkItem(lambda ctx, q=queries: self.browse_task(ctx, q))
            else:
                customer = rng.randint(0, NUM_CUSTOMERS - 1)
                yield WorkItem(
                    lambda ctx, c=customer, q=queries: self.reserve_task(ctx, c, q)
                )
