"""HashTable (WS1): 256 buckets with overflow chains, keys 0..255.

Transactions look up, insert, or delete a uniformly random value with
equal probability.  Conflicts are rare (different buckets live on
different lines), so the workload scales nearly linearly — the paper's
"embarrassingly concurrent" case.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address

NUM_BUCKETS = 256
KEY_RANGE = 256

# Chain-node field offsets (words).
NODE_KEY = 0
NODE_VALUE = 1
NODE_NEXT = 2
NODE_WORDS = 3


class HashTableWorkload(Workload):
    """Chained hash table over simulated memory."""

    name = "HashTable"

    def _setup(self) -> None:
        # One bucket head per cache line (a padded, scalable layout).
        line = self.machine.params.line_bytes
        self.bucket_base = self.machine.allocate(NUM_BUCKETS * line, line_aligned=True)
        # Warm up: insert half the key range untimed.
        for key in range(0, KEY_RANGE, 2):
            node = self._alloc_record(NODE_WORDS)
            head = self._bucket_address(key)
            self._poke(word_address(node, NODE_KEY), key)
            self._poke(word_address(node, NODE_VALUE), key * 10)
            self._poke(word_address(node, NODE_NEXT), self._peek(head))
            self._poke(head, node)

    def _bucket_address(self, key: int) -> int:
        return self.bucket_base + (key % NUM_BUCKETS) * self.machine.params.line_bytes

    # ------------------------------------------------------------ transactions

    def lookup(self, ctx, key: int):
        head = self._bucket_address(key)
        node = yield from ctx.read(head)
        while node:
            node_key = yield from ctx.read(word_address(node, NODE_KEY))
            if node_key == key:
                value = yield from ctx.read(word_address(node, NODE_VALUE))
                return value
            node = yield from ctx.read(word_address(node, NODE_NEXT))
        return None

    def insert(self, ctx, key: int, value: int):
        head = self._bucket_address(key)
        node = yield from ctx.read(head)
        while node:
            node_key = yield from ctx.read(word_address(node, NODE_KEY))
            if node_key == key:
                yield from ctx.write(word_address(node, NODE_VALUE), value)
                return False
            node = yield from ctx.read(word_address(node, NODE_NEXT))
        fresh = self._alloc_record(NODE_WORDS)
        old_head = yield from ctx.read(head)
        yield from ctx.write(word_address(fresh, NODE_KEY), key)
        yield from ctx.write(word_address(fresh, NODE_VALUE), value)
        yield from ctx.write(word_address(fresh, NODE_NEXT), old_head)
        yield from ctx.write(head, fresh)
        return True

    def delete(self, ctx, key: int):
        head = self._bucket_address(key)
        previous = 0
        node = yield from ctx.read(head)
        while node:
            node_key = yield from ctx.read(word_address(node, NODE_KEY))
            if node_key == key:
                successor = yield from ctx.read(word_address(node, NODE_NEXT))
                if previous:
                    yield from ctx.write(word_address(previous, NODE_NEXT), successor)
                else:
                    yield from ctx.write(head, successor)
                return True
            previous = node
            node = yield from ctx.read(word_address(node, NODE_NEXT))
        return False

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)

        def make_body():
            key = rng.randint(0, KEY_RANGE - 1)
            operation = rng.randint(0, 2)
            if operation == 0:
                return lambda ctx: self.lookup(ctx, key)
            if operation == 1:
                value = rng.randint(0, 1 << 20)
                return lambda ctx: self.insert(ctx, key, value)
            return lambda ctx: self.delete(ctx, key)

        while True:
            yield WorkItem(make_body())
