"""LFUCache (WS1): web-cache simulation with a Zipf page stream.

A 2048-entry array maps pages to frequency counts; a small (255-entry)
priority heap tracks the most frequently accessed pages.  Because page
popularity is Zipf-distributed, nearly every transaction touches the
same few hot heap slots — the workload admits essentially no
concurrency, and eager conflict management produces cascades of futile
stalls (Section 7.4).
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address
from repro.workloads.zipf import ZipfSampler

NUM_PAGES = 2048
HEAP_ENTRIES = 255


class LFUCacheWorkload(Workload):
    """Frequency-tracking cache with a shared priority heap."""

    name = "LFUCache"

    def _setup(self) -> None:
        machine = self.machine
        # Queue bookkeeping word (entry count / epoch) updated by every
        # access, as in the original benchmark's priority-queue
        # maintenance; with the Zipf stream this is what leaves the
        # workload with essentially no exploitable concurrency.
        self.epoch_address = machine.allocate(machine.params.line_bytes, line_aligned=True)
        # freq[page]: large array index (word per page).
        self.freq_base = machine.allocate_words(NUM_PAGES, line_aligned=True)
        # heap[i] = page id occupying slot i (0 = empty); heap is a
        # binary min-heap on frequency kept small and hot.
        self.heap_base = machine.allocate_words(HEAP_ENTRIES, line_aligned=True)
        # heap_index[page] = slot + 1 (0 = not in heap).
        self.slot_base = machine.allocate_words(NUM_PAGES, line_aligned=True)
        self.zipf = ZipfSampler(NUM_PAGES)
        # Warm the heap with the hottest pages.
        for slot in range(HEAP_ENTRIES):
            page = slot  # ranks 0..254 are the Zipf head
            self._poke(word_address(self.heap_base, slot), page + 1)
            self._poke(word_address(self.slot_base, page), slot + 1)
            self._poke(word_address(self.freq_base, page), 1)

    # ------------------------------------------------------------ transactions

    def access_page(self, ctx, page: int):
        """One page hit: bump its frequency and fix the heap."""
        epoch = yield from ctx.read(self.epoch_address)
        yield from ctx.write(self.epoch_address, epoch + 1)
        yield from ctx.work(30)  # page-id hashing + queue bookkeeping
        freq_address = word_address(self.freq_base, page)
        frequency = yield from ctx.read(freq_address)
        frequency += 1
        yield from ctx.write(freq_address, frequency)
        slot_word = yield from ctx.read(word_address(self.slot_base, page))
        if slot_word:
            yield from self._sift_down(ctx, slot_word - 1, page, frequency)
        else:
            yield from self._maybe_replace_root(ctx, page, frequency)

    def _sift_down(self, ctx, slot: int, page: int, frequency: int):
        """Restore heap order after a frequency increase.

        The heap is a min-heap on frequency, so a hotter page sinks
        toward the leaves; the walk reads/writes the hot top slots.
        """
        while True:
            left, right = 2 * slot + 1, 2 * slot + 2
            best, best_freq = slot, frequency
            for child in (left, right):
                if child >= HEAP_ENTRIES:
                    continue
                child_page = yield from ctx.read(word_address(self.heap_base, child))
                if not child_page:
                    continue
                child_freq = yield from ctx.read(
                    word_address(self.freq_base, child_page - 1)
                )
                if child_freq < best_freq:
                    best, best_freq = child, child_freq
            if best == slot:
                return
            other_page = yield from ctx.read(word_address(self.heap_base, best))
            yield from ctx.write(word_address(self.heap_base, slot), other_page)
            yield from ctx.write(word_address(self.slot_base, other_page - 1), slot + 1)
            yield from ctx.write(word_address(self.heap_base, best), page + 1)
            yield from ctx.write(word_address(self.slot_base, page), best + 1)
            slot = best

    def _maybe_replace_root(self, ctx, page: int, frequency: int):
        """A page outside the heap evicts the root when it is hotter."""
        root_page = yield from ctx.read(word_address(self.heap_base, 0))
        if not root_page:
            yield from ctx.write(word_address(self.heap_base, 0), page + 1)
            yield from ctx.write(word_address(self.slot_base, page), 1)
            return
        root_freq = yield from ctx.read(word_address(self.freq_base, root_page - 1))
        if frequency <= root_freq:
            return
        yield from ctx.write(word_address(self.slot_base, root_page - 1), 0)
        yield from ctx.write(word_address(self.heap_base, 0), page + 1)
        yield from ctx.write(word_address(self.slot_base, page), 1)
        yield from self._sift_down(ctx, 0, page, frequency)

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            page = self.zipf.sample(rng)
            yield WorkItem(lambda ctx, page=page: self.access_page(ctx, page))
