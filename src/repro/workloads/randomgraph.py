"""RandomGraph (WS1): adjacency-list graph with vertex insert/delete.

Transactions insert or delete vertices (50% each); a new vertex gets up
to four randomly chosen neighbours.  The graph is represented the way
the original RSTM benchmark represents it: a global *linked list* of
vertex records, each carrying its own adjacency list.  Every operation
therefore begins with a linear search of the vertex list — the source
of the paper's ~80 cache lines read per transaction — and every
insert/delete writes list linkage that other searches are reading.
Conflicts are many and scattered; eager conflict management livelocks
at high thread counts (FriendlyFire, FutileStall, DuellingUpgrade),
while lazy management stays flat (Section 7.4).
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address

#: Vertex ids are drawn from this range; steady state holds about half.
KEY_RANGE = 48

# Vertex-record fields (words).
V_ID = 0
V_NEXT = 1  # next vertex in the global list
V_ADJ = 2  # adjacency list head
V_WORDS = 3

# Edge-node fields.
E_TARGET = 0  # neighbour's vertex-record address
E_NEXT = 1
E_WORDS = 2

MAX_NEIGHBORS = 4


class RandomGraphWorkload(Workload):
    """Undirected graph: linked vertex list + per-vertex edge lists."""

    name = "RandomGraph"

    def _setup(self) -> None:
        # Head pointer of the global vertex list.
        self.head_address = self.machine.allocate(
            self.machine.params.line_bytes, line_aligned=True
        )
        warm_rng = self.rng.fork(0xABCD)
        # Seed half the id range, then a few random edges.
        records = {}
        for vertex_id in range(0, KEY_RANGE, 2):
            records[vertex_id] = self._seed_vertex(vertex_id)
        seeded = set()
        ids = sorted(records)
        for vertex_id in ids:
            for _ in range(2):
                other = warm_rng.choice(ids)
                pair = (min(vertex_id, other), max(vertex_id, other))
                if other != vertex_id and pair not in seeded:
                    seeded.add(pair)
                    self._seed_edge(records[vertex_id], records[other])
                    self._seed_edge(records[other], records[vertex_id])

    def _seed_vertex(self, vertex_id: int) -> int:
        record = self._alloc_record(V_WORDS)
        self._poke(word_address(record, V_ID), vertex_id)
        self._poke(word_address(record, V_NEXT), self._peek(self.head_address))
        self._poke(self.head_address, record)
        return record

    def _seed_edge(self, source: int, target: int) -> None:
        edge = self._alloc_record(E_WORDS)
        self._poke(word_address(edge, E_TARGET), target)
        self._poke(word_address(edge, E_NEXT), self._peek(word_address(source, V_ADJ)))
        self._poke(word_address(source, V_ADJ), edge)

    # ------------------------------------------------------------ transactions

    def _find(self, ctx, vertex_id: int):
        """Walk the global vertex list; returns (record, predecessor)."""
        previous = 0
        record = yield from ctx.read(self.head_address)
        while record:
            record_id = yield from ctx.read(word_address(record, V_ID))
            if record_id == vertex_id:
                return record, previous
            previous = record
            record = yield from ctx.read(word_address(record, V_NEXT))
        return 0, previous

    def insert_vertex(self, ctx, vertex_id: int, neighbor_ids):
        record, _ = yield from self._find(ctx, vertex_id)
        if record:
            return False
        fresh = self._alloc_record(V_WORDS)
        old_head = yield from ctx.read(self.head_address)
        yield from ctx.write(word_address(fresh, V_ID), vertex_id)
        yield from ctx.write(word_address(fresh, V_NEXT), old_head)
        yield from ctx.write(word_address(fresh, V_ADJ), 0)
        yield from ctx.write(self.head_address, fresh)
        for neighbor_id in neighbor_ids:
            if neighbor_id == vertex_id:
                continue
            neighbor, _ = yield from self._find(ctx, neighbor_id)
            if not neighbor:
                continue
            yield from self._add_edge(ctx, fresh, neighbor)
            yield from self._add_edge(ctx, neighbor, fresh)
        return True

    def delete_vertex(self, ctx, vertex_id: int):
        record, previous = yield from self._find(ctx, vertex_id)
        if not record:
            return False
        # Remove the back-edge at every neighbour (scattered reads).
        edge = yield from ctx.read(word_address(record, V_ADJ))
        while edge:
            target = yield from ctx.read(word_address(edge, E_TARGET))
            yield from self._remove_edge(ctx, target, record)
            edge = yield from ctx.read(word_address(edge, E_NEXT))
        successor = yield from ctx.read(word_address(record, V_NEXT))
        if previous:
            yield from ctx.write(word_address(previous, V_NEXT), successor)
        else:
            yield from ctx.write(self.head_address, successor)
        return True

    def _add_edge(self, ctx, source: int, target: int):
        """Append an edge after a duplicate scan (reads)."""
        adj_address = word_address(source, V_ADJ)
        edge = yield from ctx.read(adj_address)
        while edge:
            existing = yield from ctx.read(word_address(edge, E_TARGET))
            if existing == target:
                return
            edge = yield from ctx.read(word_address(edge, E_NEXT))
        fresh = self._alloc_record(E_WORDS)
        old_head = yield from ctx.read(adj_address)
        yield from ctx.write(word_address(fresh, E_TARGET), target)
        yield from ctx.write(word_address(fresh, E_NEXT), old_head)
        yield from ctx.write(adj_address, fresh)

    def _remove_edge(self, ctx, source: int, target: int):
        adj_address = word_address(source, V_ADJ)
        previous = 0
        edge = yield from ctx.read(adj_address)
        while edge:
            existing = yield from ctx.read(word_address(edge, E_TARGET))
            successor = yield from ctx.read(word_address(edge, E_NEXT))
            if existing == target:
                if previous:
                    yield from ctx.write(word_address(previous, E_NEXT), successor)
                else:
                    yield from ctx.write(adj_address, successor)
                return
            previous = edge
            edge = successor

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            vertex_id = rng.randint(0, KEY_RANGE - 1)
            if rng.randint(0, 1):
                neighbors = tuple(
                    rng.randint(0, KEY_RANGE - 1) for _ in range(MAX_NEIGHBORS)
                )
                yield WorkItem(
                    lambda ctx, v=vertex_id, ns=neighbors: self.insert_vertex(ctx, v, ns)
                )
            else:
                yield WorkItem(lambda ctx, v=vertex_id: self.delete_vertex(ctx, v))
