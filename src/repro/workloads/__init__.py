"""The benchmark workloads of Table 3(b).

Workload-Set 1 (WS1): HashTable, RBTree, LFUCache, RandomGraph,
Delaunay.  Workload-Set 2 (WS2): Vacation (low/high contention).
Prime is the compute-bound background application of Figure 5(e)/(f).

Every workload builds its shared data structure in simulated memory and
expresses transactions as generator functions over the portable
:class:`~repro.runtime.api.TxContext`, so the identical code runs on
FlexTM, RTM-F, RSTM, TL-2 and CGL.
"""

from repro.workloads.base import Workload, word_address
from repro.workloads.zipf import ZipfSampler
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.rbtree import RedBlackTree, RBTreeWorkload
from repro.workloads.lfucache import LFUCacheWorkload
from repro.workloads.randomgraph import RandomGraphWorkload
from repro.workloads.delaunay import DelaunayWorkload
from repro.workloads.vacation import VacationWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.prime import PrimeWorkload

WORKLOADS = {
    "HashTable": HashTableWorkload,
    "RBTree": RBTreeWorkload,
    "LFUCache": LFUCacheWorkload,
    "RandomGraph": RandomGraphWorkload,
    "Delaunay": DelaunayWorkload,
    "Vacation-Low": lambda machine, seed=0: VacationWorkload(machine, seed=seed, contention="low"),
    "Vacation-High": lambda machine, seed=0: VacationWorkload(machine, seed=seed, contention="high"),
    # Extension beyond Table 3(b): STAMP-style clustering.
    "KMeans": KMeansWorkload,
}

__all__ = [
    "Workload",
    "word_address",
    "ZipfSampler",
    "HashTableWorkload",
    "RedBlackTree",
    "RBTreeWorkload",
    "LFUCacheWorkload",
    "RandomGraphWorkload",
    "DelaunayWorkload",
    "VacationWorkload",
    "KMeansWorkload",
    "PrimeWorkload",
    "WORKLOADS",
]
