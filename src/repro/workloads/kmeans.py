"""KMeans — a STAMP-style clustering workload (extension).

Not part of the paper's Table 3(b), but from the same benchmark suite
as Vacation and a common TM evaluation point: threads stream over
private points and transactionally fold each into its nearest shared
centroid (member count + coordinate sums).  Conflict level is set by
``num_clusters`` — few clusters means hot centroids (Vacation-High-like
contention), many clusters means near-perfect scaling.

Distance computation happens outside the transaction (it reads only
private data); only the centroid update is atomic — the standard
TM-parallel kmeans decomposition.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload

#: Dimensionality of the synthetic points.
DIMENSIONS = 2
#: Coordinate scale (fixed-point integers).
COORD_RANGE = 1024

# Centroid-record fields (words): count, sum_x, sum_y.
C_COUNT = 0
C_SUM0 = 1
C_WORDS = 1 + DIMENSIONS


class KMeansWorkload(Workload):
    """Transactional centroid accumulation."""

    name = "KMeans"

    def __init__(self, machine, seed: int = 0, num_clusters: int = 16):
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        super().__init__(machine, seed)

    def _setup(self) -> None:
        line = self.machine.params.line_bytes
        self.centroid_base = self.machine.allocate(
            self.num_clusters * line, line_aligned=True
        )
        self.machine.warm_region(self.centroid_base, self.num_clusters * line)
        # Fixed initial centroid positions, spread over the space.
        warm_rng = self.rng.fork(0x3EA)
        self.centers: List[Tuple[int, ...]] = [
            tuple(warm_rng.randint(0, COORD_RANGE - 1) for _ in range(DIMENSIONS))
            for _ in range(self.num_clusters)
        ]

    def _centroid_address(self, cluster: int, field: int) -> int:
        return (
            self.centroid_base
            + cluster * self.machine.params.line_bytes
            + field * 8
        )

    def nearest_cluster(self, point: Tuple[int, ...]) -> int:
        """Private-phase computation: index of the closest centroid."""
        best, best_distance = 0, None
        for index, center in enumerate(self.centers):
            distance = sum((a - b) ** 2 for a, b in zip(point, center))
            if best_distance is None or distance < best_distance:
                best, best_distance = index, distance
        return best

    def assign_point(self, ctx, cluster: int, point: Tuple[int, ...]):
        """Transaction: fold one point into its centroid's accumulators."""
        count_address = self._centroid_address(cluster, C_COUNT)
        count = yield from ctx.read(count_address)
        yield from ctx.write(count_address, count + 1)
        for dimension in range(DIMENSIONS):
            sum_address = self._centroid_address(cluster, C_SUM0 + dimension)
            total = yield from ctx.read(sum_address)
            yield from ctx.write(sum_address, total + point[dimension])

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            point = tuple(rng.randint(0, COORD_RANGE - 1) for _ in range(DIMENSIONS))
            cluster = self.nearest_cluster(point)
            # The distance scan is non-transactional compute.
            def body(ctx, c=cluster, p=point, k=self.num_clusters):
                yield from ctx.work(6 * k)  # distance evaluation cost
                yield from self.assign_point(ctx, c, p)

            yield WorkItem(body)

    # --------------------------------------------------------------- analysis

    def totals(self) -> Tuple[int, List[Tuple[int, ...]]]:
        """(points assigned, per-cluster coordinate sums) — untimed."""
        assigned = 0
        sums = []
        for cluster in range(self.num_clusters):
            count = self._peek(self._centroid_address(cluster, C_COUNT))
            assigned += count
            sums.append(
                tuple(
                    self._peek(self._centroid_address(cluster, C_SUM0 + d))
                    for d in range(DIMENSIONS)
                )
            )
        return assigned, sums
