"""Delaunay (WS1): triangulation with transactional seam stitching.

The original benchmark (Scott et al., IISWC'07) sorts points into
geometric regions, triangulates regions with *sequential* solvers in
parallel, then uses transactions only to stitch the seams — under 5% of
execution time is transactional, and the program is memory-bandwidth
bound.  The paper uses it to show FlexTM tracking CGL closely while the
STMs lose 2x to metadata-induced cache misses.

Our synthetic equivalent preserves exactly that profile: long
non-transactional solver phases that stream over private point arrays
(real cache traffic + compute cycles), punctuated by short transactions
that splice triangles into a shared seam list.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import WORD_BYTES
from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address

#: Points triangulated per region (drives the solver phase length).
REGION_POINTS = 64
#: Compute cycles per point in the sequential solver.
SOLVE_CYCLES_PER_POINT = 30
#: Shared seam segments (padded, one per line).
SEAM_SEGMENTS = 64


class DelaunayWorkload(Workload):
    """Data-parallel triangulation with transactional stitching."""

    name = "Delaunay"

    def _setup(self) -> None:
        machine = self.machine
        line = machine.params.line_bytes
        # Shared seam: per-segment triangle counters, padded.
        self.seam_base = machine.allocate(SEAM_SEGMENTS * line, line_aligned=True)
        # Per-thread private point arrays, allocated lazily.
        self._private_regions = {}

    def _region_for(self, thread_id: int) -> int:
        if thread_id not in self._private_regions:
            self._private_regions[thread_id] = self.machine.allocate_words(
                REGION_POINTS, line_aligned=True
            )
        return self._private_regions[thread_id]

    # ---------------------------------------------------------------- phases

    def solve_region(self, ctx, thread_id: int):
        """Non-transactional: stream over the private region and compute."""
        base = self._region_for(thread_id)
        for point in range(REGION_POINTS):
            result = yield ("load", base + point * WORD_BYTES)
            yield ("store", base + point * WORD_BYTES, (result.value + point) & 0xFFFF)
            yield ("work", SOLVE_CYCLES_PER_POINT)

    def stitch_seam(self, ctx, segment: int, triangles: int):
        """Transactional: splice this region's boundary triangles in."""
        address = word_address(self.seam_base, 0) + segment * self.machine.params.line_bytes
        count = yield from ctx.read(address)
        yield from ctx.work(15)
        yield from ctx.write(address, count + triangles)
        neighbor = (segment + 1) % SEAM_SEGMENTS
        neighbor_address = (
            word_address(self.seam_base, 0) + neighbor * self.machine.params.line_bytes
        )
        neighbor_count = yield from ctx.read(neighbor_address)
        yield from ctx.write(neighbor_address, neighbor_count + 1)

    # ----------------------------------------------------------------- stream

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            yield WorkItem(
                lambda ctx, tid=thread_id: self.solve_region(ctx, tid), transactional=False
            )
            segment = rng.randint(0, SEAM_SEGMENTS - 1)
            triangles = rng.randint(1, 5)
            yield WorkItem(
                lambda ctx, s=segment, t=triangles: self.stitch_seam(ctx, s, t)
            )
