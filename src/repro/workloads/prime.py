"""Prime factorization — the compute-bound background application.

Used in Figure 5(e)/(f): Prime threads share the machine with a
non-scalable transactional workload; how fast the transactional side
frees cores (eager detects doomed transactions early; lazy lets them
run on) determines how well Prime scales.

Factorization is modeled faithfully enough to cost what it costs:
trial division charges one compute cycle per divisor probe plus
occasional private-table loads.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import WORD_BYTES
from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload

#: Cycle cost per trial-division probe.
PROBE_CYCLES = 4
#: Numbers drawn from this range keep item lengths comparable.
NUMBER_RANGE = (100_000, 1_000_000)


class PrimeWorkload(Workload):
    """Non-transactional trial-division factorization."""

    name = "Prime"

    def _setup(self) -> None:
        # A small private scratch table per thread (allocated lazily),
        # so the work has a realistic (cache-friendly) memory footprint.
        self._scratch = {}

    def _scratch_for(self, thread_id: int) -> int:
        if thread_id not in self._scratch:
            self._scratch[thread_id] = self.machine.allocate_words(64, line_aligned=True)
        return self._scratch[thread_id]

    def factorize(self, ctx, thread_id: int, number: int):
        """Non-transactional body: factor ``number`` by trial division."""
        base = self._scratch_for(thread_id)
        remaining = number
        divisor = 2
        probes = 0
        factors = 0
        while divisor * divisor <= remaining:
            probes += 1
            if probes % 32 == 0:
                # Periodic private-table touch (precomputed primes).
                yield ("load", base + (probes // 32 % 64) * WORD_BYTES)
            yield ("work", PROBE_CYCLES)
            if remaining % divisor == 0:
                remaining //= divisor
                factors += 1
                yield ("store", base + (factors % 64) * WORD_BYTES, divisor)
            else:
                divisor += 1
        return factors + (1 if remaining > 1 else 0)

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)
        while True:
            number = rng.randint(*NUMBER_RANGE)
            yield WorkItem(
                lambda ctx, tid=thread_id, n=number: self.factorize(ctx, tid, n),
                transactional=False,
            )

    def abort_work(self, thread_id: int):
        """Generator factory for TxThread.abort_work (Figure 5e/f).

        Each invocation factors one fresh number on the aborting
        thread, modelling 'yield to compute-intensive work'.
        """
        rng = self.rng.fork(0x9000 + thread_id)

        def run_one(ctx):
            number = rng.randint(*NUMBER_RANGE)
            yield from self.factorize(ctx, thread_id, number)

        return run_one
