"""RBTree (WS1): red-black tree, keys 0..4095, 256-byte nodes.

Transactions insert, delete, or look up uniformly random values.
Searching proceeds top-down while insertion rebalances bottom-up —
the access pattern the paper highlights as the source of RBTree's
read-write sharing, which eager conflict management handles poorly
(Figure 5a).

Deletion uses tombstones: the node is found and marked dead rather
than physically unlinked (a common TM-benchmark simplification that
keeps delete's conflict footprint — a top-down search plus a write —
while bounding the code's complexity; physical structure is still
mutated by inserts, which revive tombstoned keys in place).  The
steady-state key population stays at ~50% of the range as in the paper.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.machine import FlexTMMachine
from repro.runtime.txthread import WorkItem
from repro.workloads.base import Workload, word_address

KEY_RANGE = 4096
#: The paper's node size; fields occupy the first line, the rest pads.
NODE_BYTES = 256

# Field offsets (words).
KEY = 0
VALUE = 1
LEFT = 2
RIGHT = 3
PARENT = 4
COLOR = 5  # 0 = black, 1 = red
DEAD = 6  # tombstone flag

BLACK = 0
RED = 1
NIL = 0


class RedBlackTree:
    """A red-black tree living in simulated memory.

    All tree operations are generator functions over a TxContext, so
    the same tree code is reused by the RBTree workload and by
    Vacation's in-memory database tables.
    """

    def __init__(self, machine: FlexTMMachine):
        self.machine = machine
        self.root_address = machine.allocate(machine.params.line_bytes, line_aligned=True)

    # -- untimed warm-up ---------------------------------------------------------

    def seed_insert(self, key: int, value: int) -> None:
        """Direct (untimed) insert used during setup; plain BST insert
        followed by an untimed recolor is unnecessary — we insert into a
        balanced position by construction in the workloads, so setup
        just builds an unbalanced BST and blackens every node.  Lookup
        correctness does not depend on balance."""
        memory = self.machine.memory
        fresh = self._alloc_node()
        # Warm-up state: pre-fill L2 tags like the paper's untimed
        # single-thread warm-up phase would have.
        self.machine.warm_region(fresh, NODE_BYTES)
        self.machine.warm_region(self.root_address, 8)
        memory.write(word_address(fresh, KEY), key)
        memory.write(word_address(fresh, VALUE), value)
        memory.write(word_address(fresh, COLOR), BLACK)
        parent, node = NIL, memory.read(self.root_address)
        while node != NIL:
            parent = node
            node_key = memory.read(word_address(node, KEY))
            if key == node_key:
                memory.write(word_address(node, VALUE), value)
                memory.write(word_address(node, DEAD), 0)
                return
            node = memory.read(word_address(node, LEFT if key < node_key else RIGHT))
        memory.write(word_address(fresh, PARENT), parent)
        if parent == NIL:
            memory.write(self.root_address, fresh)
        else:
            parent_key = memory.read(word_address(parent, KEY))
            memory.write(word_address(parent, LEFT if key < parent_key else RIGHT), fresh)

    def _alloc_node(self) -> int:
        return self.machine.allocate(NODE_BYTES, line_aligned=True)

    # -- transactional operations -------------------------------------------------

    def lookup(self, ctx, key: int):
        node = yield from ctx.read(self.root_address)
        while node != NIL:
            node_key = yield from ctx.read(word_address(node, KEY))
            if key == node_key:
                dead = yield from ctx.read(word_address(node, DEAD))
                if dead:
                    return None
                value = yield from ctx.read(word_address(node, VALUE))
                return value
            node = yield from ctx.read(word_address(node, LEFT if key < node_key else RIGHT))
        return None

    def insert(self, ctx, key: int, value: int):
        parent = NIL
        node = yield from ctx.read(self.root_address)
        while node != NIL:
            node_key = yield from ctx.read(word_address(node, KEY))
            if key == node_key:
                dead = yield from ctx.read(word_address(node, DEAD))
                if dead:
                    # Revive the tombstoned key in place.
                    yield from ctx.write(word_address(node, VALUE), value)
                    yield from ctx.write(word_address(node, DEAD), 0)
                    return True
                return False  # present already: read-only no-op
            parent = node
            node = yield from ctx.read(word_address(node, LEFT if key < node_key else RIGHT))
        fresh = self._alloc_node()
        yield from ctx.write(word_address(fresh, KEY), key)
        yield from ctx.write(word_address(fresh, VALUE), value)
        yield from ctx.write(word_address(fresh, COLOR), RED)
        yield from ctx.write(word_address(fresh, PARENT), parent)
        if parent == NIL:
            yield from ctx.write(self.root_address, fresh)
        else:
            parent_key = yield from ctx.read(word_address(parent, KEY))
            yield from ctx.write(word_address(parent, LEFT if key < parent_key else RIGHT), fresh)
        yield from self._insert_fixup(ctx, fresh)
        return True

    def delete(self, ctx, key: int):
        """Tombstone delete (see module docstring)."""
        node = yield from ctx.read(self.root_address)
        while node != NIL:
            node_key = yield from ctx.read(word_address(node, KEY))
            if key == node_key:
                dead = yield from ctx.read(word_address(node, DEAD))
                if dead:
                    return False
                yield from ctx.write(word_address(node, DEAD), 1)
                return True
            node = yield from ctx.read(word_address(node, LEFT if key < node_key else RIGHT))
        return False

    # -- red-black fixup machinery ---------------------------------------------

    def _insert_fixup(self, ctx, node: int):
        """Bottom-up recoloring/rotation after insert (CLRS)."""
        while True:
            parent = yield from ctx.read(word_address(node, PARENT))
            if parent == NIL:
                break
            parent_color = yield from ctx.read(word_address(parent, COLOR))
            if parent_color == BLACK:
                break
            grandparent = yield from ctx.read(word_address(parent, PARENT))
            if grandparent == NIL:
                break
            grandparent_left = yield from ctx.read(word_address(grandparent, LEFT))
            parent_is_left = parent == grandparent_left
            uncle_field = RIGHT if parent_is_left else LEFT
            uncle = yield from ctx.read(word_address(grandparent, uncle_field))
            uncle_color = BLACK
            if uncle != NIL:
                uncle_color = yield from ctx.read(word_address(uncle, COLOR))
            if uncle != NIL and uncle_color == RED:
                yield from ctx.write(word_address(parent, COLOR), BLACK)
                yield from ctx.write(word_address(uncle, COLOR), BLACK)
                yield from ctx.write(word_address(grandparent, COLOR), RED)
                node = grandparent
                continue
            inner_field = RIGHT if parent_is_left else LEFT
            inner_child = yield from ctx.read(word_address(parent, inner_field))
            if node == inner_child:
                yield from self._rotate(ctx, parent, left=parent_is_left)
                node, parent = parent, node
            yield from ctx.write(word_address(parent, COLOR), BLACK)
            yield from ctx.write(word_address(grandparent, COLOR), RED)
            yield from self._rotate(ctx, grandparent, left=not parent_is_left)
            break
        root = yield from ctx.read(self.root_address)
        if root != NIL:
            root_color = yield from ctx.read(word_address(root, COLOR))
            if root_color != BLACK:
                yield from ctx.write(word_address(root, COLOR), BLACK)

    def _rotate(self, ctx, pivot: int, left: bool):
        """Left or right rotation around ``pivot``."""
        up_field, down_field = (RIGHT, LEFT) if left else (LEFT, RIGHT)
        riser = yield from ctx.read(word_address(pivot, up_field))
        if riser == NIL:
            return
        transfer = yield from ctx.read(word_address(riser, down_field))
        yield from ctx.write(word_address(pivot, up_field), transfer)
        if transfer != NIL:
            yield from ctx.write(word_address(transfer, PARENT), pivot)
        pivot_parent = yield from ctx.read(word_address(pivot, PARENT))
        yield from ctx.write(word_address(riser, PARENT), pivot_parent)
        if pivot_parent == NIL:
            yield from ctx.write(self.root_address, riser)
        else:
            parent_left = yield from ctx.read(word_address(pivot_parent, LEFT))
            field = LEFT if parent_left == pivot else RIGHT
            yield from ctx.write(word_address(pivot_parent, field), riser)
        yield from ctx.write(word_address(riser, down_field), pivot)
        yield from ctx.write(word_address(pivot, PARENT), riser)


class RBTreeWorkload(Workload):
    """The WS1 RBTree benchmark."""

    name = "RBTree"

    def _setup(self) -> None:
        self.tree = RedBlackTree(self.machine)
        # Steady state: ~2048 of 4096 keys present.  Seed with a
        # balanced insertion order so lookups start at sane depth.
        keys = [key for key in range(0, KEY_RANGE, 2)]
        self._seed_balanced(keys)

    def _seed_balanced(self, keys) -> None:
        if not keys:
            return
        middle = len(keys) // 2
        self.tree.seed_insert(keys[middle], keys[middle] * 10)
        self._seed_balanced(keys[:middle])
        self._seed_balanced(keys[middle + 1:])

    def items(self, thread_id: int) -> Iterator[WorkItem]:
        rng = self.rng.fork(thread_id)

        def make_body():
            key = rng.randint(0, KEY_RANGE - 1)
            operation = rng.randint(0, 2)
            if operation == 0:
                return lambda ctx: self.tree.lookup(ctx, key)
            if operation == 1:
                value = rng.randint(0, 1 << 20)
                return lambda ctx: self.tree.insert(ctx, key, value)
            return lambda ctx: self.tree.delete(ctx, key)

        while True:
            yield WorkItem(make_body())
